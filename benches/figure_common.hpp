// Shared runner for the paper's Figures 5/6/7: latency of M echo requests
// (M = 1..128) under the three client strategies, at a fixed payload size.
// Each figure binary calls run_figure_bench with its payload.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "benchsupport/harness.hpp"

namespace spi::bench {

struct FigureSpec {
  std::string figure;        // "Figure 5"
  size_t payload_bytes = 0;  // the paper's N
  std::string paper_expectation;  // one-line description of the paper shape
};

inline int run_figure_bench(const FigureSpec& spec) {
  const net::LinkParams link = link_params_from_env();
  const core::PackCostModel pack_cost = pack_cost_from_env();
  const size_t reps = bench_reps(3);
  const size_t max_m = bench_max_m(128);

  std::printf("=== %s: latency vs M, payload N = %zu bytes ===\n",
              spec.figure.c_str(), spec.payload_bytes);
  std::printf("paper shape: %s\n", spec.paper_expectation.c_str());
  std::printf(
      "link: connect=%lldus rtt=%lldus bw=%.1fMbit/s endpoint=%.0fns/B "
      "msg=%lldus pack=%.0fns/B reps=%zu\n\n",
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              link.connect_cost)
              .count()),
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(link.rtt)
              .count()),
      link.bandwidth_bytes_per_sec * 8.0 / 1e6, link.endpoint_ns_per_byte,
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              link.per_message_overhead)
              .count()),
      pack_cost.ns_per_byte, reps);

  FixtureOptions options;
  options.link = link;
  // Tomcat-era server sizing: wide protocol stage (one thread per live
  // connection), application stage sized for the dual-CPU testbed server.
  options.server.protocol_threads = 160;
  options.server.application_threads = 16;
  options.server.pack_cost = pack_cost;
  options.client.pack_cost = pack_cost;
  EchoFixture fixture(options);

  Table table({"M", "No Optimization (ms)", "Multiple Threads (ms)",
               "Our Approach (ms)", "speedup vs serial", "fastest"});

  for (size_t m = 1; m <= max_m; m *= 2) {
    auto calls = make_echo_calls(m, spec.payload_bytes,
                                 /*seed=*/0xF1900 + m);
    double serial =
        run_repeated(fixture.client(), calls, Strategy::kSerial, reps)
            .median_ms;
    double threaded =
        run_repeated(fixture.client(), calls, Strategy::kMultithreaded, reps)
            .median_ms;
    double packed =
        run_repeated(fixture.client(), calls, Strategy::kPacked, reps)
            .median_ms;

    const char* fastest = "Our Approach";
    if (serial <= threaded && serial <= packed) fastest = "No Optimization";
    else if (threaded <= packed) fastest = "Multiple Threads";

    table.add_row({std::to_string(m), fmt_ms(serial), fmt_ms(threaded),
                   fmt_ms(packed), fmt_ratio(serial / packed), fastest});
  }
  table.print();

  auto wire = fixture.transport().stats();
  std::printf("\nwire totals: %llu connections, %.2f MB sent\n",
              static_cast<unsigned long long>(wire.connections_opened),
              static_cast<double>(wire.bytes_sent) / 1e6);
  return 0;
}

}  // namespace spi::bench
