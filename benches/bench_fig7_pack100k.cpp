// Figure 7: packing 100 KB messages. Paper: Our Approach becomes the MOST
// time consuming — the payload dwarfs the per-message overhead saved, and
// pack/unpack handling of the huge single message costs more than it wins.
#include "figure_common.hpp"

int main() {
  return spi::bench::run_figure_bench(
      {"Figure 7", "fig7_pack100k", 100'000,
       "Our Approach slowest (pack/unpack overhead on huge bodies exceeds "
       "the per-message savings); Multiple Threads fastest"});
}
