// Extension bench (paper §5 future work, implemented in
// core/auto_batcher.hpp): transparent client-side coalescing. Sweeps the
// batching window and reports how close automatic packing gets to
// hand-packed batches for a burst of M independent calls.
#include <cstdio>

#include "benchsupport/harness.hpp"
#include "core/auto_batcher.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

struct AutoResult {
  double ms = 0;
  std::uint64_t envelopes = 0;
};

AutoResult run_auto(EchoFixture& fixture,
                    const std::vector<core::ServiceCall>& calls,
                    Duration window) {
  core::AutoBatcher::Options options;
  options.max_batch = calls.size();
  options.max_delay = window;
  core::AutoBatcher batcher(fixture.client(), options);

  auto before = fixture.client().stats().assembler.envelopes;
  Stopwatch watch;
  std::vector<std::future<core::CallOutcome>> futures;
  futures.reserve(calls.size());
  for (const auto& call : calls) {
    futures.push_back(batcher.call_async(call));
  }
  for (auto& future : futures) {
    auto outcome = future.get();
    if (!outcome.ok()) throw SpiError(outcome.error());
  }
  AutoResult result;
  result.ms = watch.elapsed_ms();
  result.envelopes = fixture.client().stats().assembler.envelopes - before;
  return result;
}

}  // namespace

int main() {
  const size_t reps = bench_reps(3);
  const size_t m = 32;
  const size_t payload = 1000;

  FixtureOptions options;
  options.link = link_params_from_env();
  options.server.pack_cost = pack_cost_from_env();
  options.client.pack_cost = pack_cost_from_env();
  EchoFixture fixture(options);
  auto calls = make_echo_calls(m, payload, /*seed=*/0xA07);

  std::printf("=== AutoBatcher: automatic packing (paper §5, implemented) ===\n");
  std::printf(
      "burst of M=%zu calls, N=%zu B; manual baselines vs transparent "
      "batching at several windows\n\n",
      m, payload);

  double serial = run_repeated(fixture.client(), calls, Strategy::kSerial,
                               reps)
                      .median_ms;
  double packed = run_repeated(fixture.client(), calls, Strategy::kPacked,
                               reps)
                      .median_ms;

  Table table({"variant", "median (ms)", "envelopes", "vs hand-packed"});
  table.add_row({"serial (no batching)", fmt_ms(serial), std::to_string(m),
                 fmt_ratio(serial / packed)});
  table.add_row({"hand-packed batch", fmt_ms(packed), "1", "1.00x"});

  for (auto window_us : {100, 500, 2000}) {
    std::vector<double> samples;
    std::uint64_t envelopes = 0;
    for (size_t r = 0; r < reps; ++r) {
      auto result =
          run_auto(fixture, calls, std::chrono::microseconds(window_us));
      samples.push_back(result.ms);
      envelopes = result.envelopes;
    }
    double ms = summarize(std::move(samples)).median_ms;
    table.add_row({"auto, window " + std::to_string(window_us) + "us",
                   fmt_ms(ms), std::to_string(envelopes),
                   fmt_ratio(ms / packed)});
  }
  table.print();
  std::printf(
      "\nexpected: auto batching approaches the hand-packed time while the "
      "application issues plain single calls\n");
  return 0;
}
