// Ablation: how much of the serial strategy's cost is TCP connection
// setup versus per-message processing? HTTP keep-alive removes the
// per-message connect cost while keeping everything else, separating the
// two savings that packing delivers together (§4.2's "the number of TCP
// connection and SOAP Header is reduced from M to one").
#include <cstdio>

#include "benchsupport/harness.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

double serial_ms(bool keep_alive, size_t m, size_t payload, size_t reps) {
  FixtureOptions options;
  options.link = link_params_from_env();
  options.client.keep_alive = keep_alive;
  EchoFixture fixture(options);
  auto calls = make_echo_calls(m, payload, /*seed=*/0xCAFE + m);
  return run_repeated(fixture.client(), calls, Strategy::kSerial, reps)
      .median_ms;
}

}  // namespace

int main() {
  const size_t reps = bench_reps(3);
  const size_t max_m = bench_max_m(64);
  const size_t payload = 10;

  std::printf("=== Ablation: connection setup vs per-message cost ===\n");
  std::printf(
      "serial strategy, payload %zu B; keep-alive removes the connect cost "
      "only\n\n",
      payload);

  Table table({"M", "new conn/msg (ms)", "keep-alive (ms)",
               "connect share", "remaining/msg (ms)"});
  for (size_t m = 2; m <= max_m; m *= 2) {
    double fresh = serial_ms(false, m, payload, reps);
    double reused = serial_ms(true, m, payload, reps);
    char share[32];
    std::snprintf(share, sizeof(share), "%.0f%%",
                  (1.0 - reused / fresh) * 100.0);
    table.add_row({std::to_string(m), fmt_ms(fresh), fmt_ms(reused), share,
                   fmt_ms(reused / static_cast<double>(m))});
  }
  table.print();
  return 0;
}
