// Packing-proxy study (DESIGN.md §15): goodput and tail latency of the
// SPI-aware scatter/gather proxy versus a pack-oblivious round-robin L7
// proxy in front of the same backend fleet, at K = 2 and K = 4, plus a
// backend-kill chaos cell at K = 3 (one member dies mid-run; the packing
// proxy re-packs its sub-calls onto survivors inside the deadline).
//
// The round-robin baseline forwards each packed envelope OPAQUELY to one
// backend, so a pack's M calls serialize behind that single member's
// application stage pool (M=16 calls over 8 handler threads = 2 serial
// rounds); the packing proxy splits the same envelope into per-owner
// sub-packs whose calls run one round each, concurrently, across K pools.
//
// Two workload cells:
//  * service-bound (headline): near-instant link, each sub-call is
//    EchoService/Delay(service_ms) — per-call service time dominates, the
//    term fan-out parallelizes.
//  * paper-link (secondary): the 2006 testbed model (100 Mbit, 2 ms
//    per-message overhead on a single-core client). Splitting a pack
//    DE-amortizes exactly the per-message cost packing exists to
//    amortize, so the packing proxy loses this cell — kept as the honest
//    boundary of the approach.
//
// Environment overrides:
//   SPI_BENCH_messages     packed messages per cell (default 200)
//   SPI_BENCH_clients      concurrent closed-loop clients (default 4)
//   SPI_BENCH_service_ms   per-call Delay service time (default 2)
//   plus the usual SPI_LINK_* testbed knobs (benchsupport/harness.hpp)
//   for the paper-link cell.
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchsupport/harness.hpp"
#include "benchsupport/histogram.hpp"
#include "benchsupport/json_report.hpp"
#include "benchsupport/workload.hpp"
#include "proxy/baseline.hpp"
#include "proxy/proxy.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

constexpr size_t kCallsPerPack = 16;
constexpr size_t kPayloadBytes = 512;

/// A K-member echo fleet on one simulated testbed link.
struct Fleet {
  net::SimTransport transport;
  core::ServiceRegistry registry;
  std::vector<std::unique_ptr<core::SpiServer>> servers;

  explicit Fleet(size_t k, net::LinkParams link) : transport(link) {
    services::register_echo_service(registry);
    for (size_t i = 0; i < k; ++i) {
      servers.push_back(std::make_unique<core::SpiServer>(
          transport, net::Endpoint{"backend-" + std::to_string(i + 1), 80},
          registry, core::ServerOptions{}));
      if (!servers.back()->start().ok()) std::abort();
    }
  }
  ~Fleet() {
    for (auto& server : servers) server->stop();
  }

  std::vector<net::Endpoint> endpoints() const {
    std::vector<net::Endpoint> result;
    for (const auto& server : servers) result.push_back(server->endpoint());
    return result;
  }
};

/// Delay(service_ms) calls carrying a distinct shard key per call so the
/// ring spreads a pack across the fleet (the handler ignores `key`).
std::vector<core::ServiceCall> make_delay_calls(std::int64_t service_ms,
                                                std::uint64_t seed) {
  std::vector<core::ServiceCall> calls;
  calls.reserve(kCallsPerPack);
  for (size_t i = 0; i < kCallsPerPack; ++i) {
    calls.push_back(core::make_call(
        "EchoService", "Delay",
        {{"milliseconds", soap::Value(service_ms)},
         {"key", soap::Value("key-" + std::to_string(seed) + "-" +
                             std::to_string(i))}}));
  }
  return calls;
}

size_t count_delay_errors(std::int64_t service_ms,
                          const std::vector<core::CallOutcome>& outcomes) {
  size_t errors = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.ok() || !outcome.value().is_int() ||
        outcome.value().as_int() != service_ms) {
      ++errors;
    }
  }
  return errors;
}

struct Cell {
  double goodput_cps = 0;  // successful sub-calls per wall second
  double p50_ms = 0;       // per-pack latency
  double p99_ms = 0;
  double success = 0;      // fraction of sub-calls answered correctly
  std::uint64_t reroutes = 0;
  std::uint64_t rerouted_calls = 0;
};

enum class Workload { kServiceBound, kPaperLink };

/// Closed-loop clients hammer `endpoint` with packed messages;
/// `on_message(c, i)` runs before message i of client c (the chaos cell
/// kills a backend from it).
template <typename Hook>
Cell run_cell(net::SimTransport& transport, net::Endpoint endpoint,
              Workload workload, std::int64_t service_ms, size_t clients,
              size_t messages_per_client, Hook on_message) {
  LatencyHistogram latency;
  std::mutex latency_mutex;
  std::atomic<size_t> ok{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      core::ClientOptions options;
      options.keep_alive = true;
      options.call_timeout = std::chrono::seconds(10);
      core::SpiClient client(transport, endpoint, options);
      for (size_t i = 0; i < messages_per_client; ++i) {
        on_message(c, i);
        const std::uint64_t seed = c * 100003 + i;
        auto calls = workload == Workload::kServiceBound
                         ? make_delay_calls(service_ms, seed)
                         : make_echo_calls(kCallsPerPack, kPayloadBytes, seed);
        Stopwatch watch;
        auto outcomes = client.call_packed(calls);
        double ms = watch.elapsed_ms();
        size_t errors = workload == Workload::kServiceBound
                            ? count_delay_errors(service_ms, outcomes)
                            : count_echo_errors(calls, outcomes);
        ok.fetch_add(kCallsPerPack - errors, std::memory_order_relaxed);
        std::lock_guard lock(latency_mutex);
        latency.record_ms(ms);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  double seconds = std::chrono::duration<double>(wall.elapsed()).count();

  Cell cell;
  const size_t total = clients * messages_per_client * kCallsPerPack;
  cell.goodput_cps = static_cast<double>(ok.load()) / seconds;
  cell.success = static_cast<double>(ok.load()) / static_cast<double>(total);
  cell.p50_ms = latency.p50_us() / 1e3;
  cell.p99_ms = latency.p99_us() / 1e3;
  return cell;
}

auto no_hook = [](size_t, size_t) {};

proxy::ProxyOptions packing_options(const Fleet& fleet, Workload workload) {
  proxy::ProxyOptions options;
  options.backends = fleet.endpoints();
  // Shard by the per-call key (service-bound cell) or by payload value
  // (paper-link echo cell) so packs spread across the fleet.
  options.shard_param = workload == Workload::kServiceBound ? "key" : "data";
  return options;
}

Cell run_packing(size_t k, Workload workload, std::int64_t service_ms,
                 size_t clients, size_t messages, net::LinkParams link) {
  Fleet fleet(k, link);
  proxy::PackingProxy proxy(fleet.transport, net::Endpoint{"proxy", 80},
                            packing_options(fleet, workload));
  if (!proxy.start().ok()) std::abort();
  Cell cell = run_cell(fleet.transport, proxy.endpoint(), workload,
                       service_ms, clients, messages / clients, no_hook);
  cell.reroutes = proxy.stats().reroutes;
  cell.rerouted_calls = proxy.stats().rerouted_calls;
  proxy.stop();
  return cell;
}

Cell run_roundrobin(size_t k, Workload workload, std::int64_t service_ms,
                    size_t clients, size_t messages, net::LinkParams link) {
  Fleet fleet(k, link);
  proxy::RoundRobinOptions options;
  options.backends = fleet.endpoints();
  proxy::RoundRobinProxy proxy(fleet.transport, net::Endpoint{"proxy", 80},
                               std::move(options));
  if (!proxy.start().ok()) std::abort();
  Cell cell = run_cell(fleet.transport, proxy.endpoint(), workload,
                       service_ms, clients, messages / clients, no_hook);
  proxy.stop();
  return cell;
}

/// K=3 with one member killed a third of the way in: the packing proxy
/// must hold goodput at ~1.0 by re-packing the dead member's sub-calls
/// onto the survivors.
Cell run_chaos(std::int64_t service_ms, size_t clients, size_t messages) {
  Fleet fleet(3, net::LinkParams::instant());
  proxy::ProxyOptions options = packing_options(fleet, Workload::kServiceBound);
  options.backend_retry.idempotent = [](std::string_view, std::string_view) {
    return true;  // Delay is idempotent: severed calls may move backends
  };
  proxy::PackingProxy proxy(fleet.transport, net::Endpoint{"proxy", 80},
                            std::move(options));
  if (!proxy.start().ok()) std::abort();

  const size_t per_client = messages / clients;
  std::atomic<bool> killed{false};
  auto kill_hook = [&](size_t, size_t i) {
    if (i == per_client / 3 && !killed.exchange(true)) {
      fleet.servers.front()->stop();
    }
  };
  Cell cell = run_cell(fleet.transport, proxy.endpoint(),
                       Workload::kServiceBound, service_ms, clients,
                       per_client, kill_hook);
  cell.reroutes = proxy.stats().reroutes;
  cell.rerouted_calls = proxy.stats().rerouted_calls;
  proxy.stop();
  return cell;
}

std::string fmt_pct(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f%%", fraction * 100.0);
  return buffer;
}

}  // namespace

int main() {
  Config env = Config::from_env("SPI_BENCH_");
  const size_t messages =
      static_cast<size_t>(env.get_int_or("messages", 200));
  const size_t clients = static_cast<size_t>(env.get_int_or("clients", 4));
  const std::int64_t service_ms = env.get_int_or("service_ms", 2);
  net::LinkParams paper_link = link_params_from_env();

  std::printf("=== Packing proxy vs round-robin proxy (service-bound) ===\n");
  std::printf(
      "%zu packed messages per cell across %zu closed-loop clients, "
      "M=%zu Delay(%lld ms) calls per pack, 8 handler threads per backend\n\n",
      messages, clients, kCallsPerPack,
      static_cast<long long>(service_ms));

  JsonReport report("proxy_scatter");
  report.set("messages", messages);
  report.set("clients", clients);
  report.set("calls_per_pack", kCallsPerPack);
  report.set("service_ms", service_ms);

  Table table({"K", "cell", "proxy", "success", "goodput calls/s",
               "p50 (ms)", "p99 (ms)", "reroutes"});
  auto add_cells = [&](size_t k, const char* cell_label, Workload workload,
                       size_t cell_clients, net::LinkParams link) {
    Cell packing = run_packing(k, workload, service_ms, cell_clients,
                               messages, link);
    Cell robin = run_roundrobin(k, workload, service_ms, cell_clients,
                                messages, link);
    for (const auto& [label, cell] :
         {std::pair<const char*, Cell&>{"packing", packing},
          std::pair<const char*, Cell&>{"round-robin", robin}}) {
      table.add_row({std::to_string(k), cell_label, label,
                     fmt_pct(cell.success), fmt_ms(cell.goodput_cps),
                     fmt_ms(cell.p50_ms), fmt_ms(cell.p99_ms),
                     std::to_string(cell.reroutes)});
      JsonObject& row = report.add_row();
      row.set("k", k);
      row.set("cell", std::string(cell_label));
      row.set("clients", cell_clients);
      row.set("proxy", std::string(label));
      row.set("success", cell.success);
      row.set("goodput_cps", cell.goodput_cps);
      row.set("p50_ms", cell.p50_ms);
      row.set("p99_ms", cell.p99_ms);
      row.set("reroutes", cell.reroutes);
    }
    std::printf("K=%zu %s: packing %.0f calls/s p50 %.2f ms vs round-robin "
                "%.0f calls/s p50 %.2f ms\n",
                k, cell_label, packing.goodput_cps, packing.p50_ms,
                robin.goodput_cps, robin.p50_ms);
  };

  // Headline: light load (one closed-loop client). The round-robin proxy
  // parks the whole 16-call pack on one member (2 serial rounds over its
  // 8 handler threads); the packing proxy splits it so every sub-pack is
  // one round — per-pack latency halves, which in a closed loop is
  // per-client goodput.
  for (size_t k : {size_t{2}, size_t{4}}) {
    add_cells(k, "light", Workload::kServiceBound, 1,
              net::LinkParams::instant());
  }
  // Saturated: enough clients that total service demand meets fleet
  // capacity. Both proxies then drain the same K×8 handler threads, so
  // the cell measures the packing proxy's overhead, not a win.
  for (size_t k : {size_t{2}, size_t{4}}) {
    add_cells(k, "saturated", Workload::kServiceBound, clients,
              net::LinkParams::instant());
  }
  // The boundary cell: the paper's own 2006 testbed model, where 2 ms
  // per-message overhead on a single-core client dominates — splitting a
  // pack multiplies exactly the term packing amortizes.
  add_cells(4, "paper-link", Workload::kPaperLink, clients, paper_link);
  table.print();

  std::printf("\n=== Backend-kill chaos cell (K=3, one killed mid-run) ===\n");
  Cell chaos = run_chaos(service_ms, clients, messages);
  Table chaos_table({"success", "goodput calls/s", "p99 (ms)", "reroutes",
                     "rerouted calls"});
  chaos_table.add_row({fmt_pct(chaos.success), fmt_ms(chaos.goodput_cps),
                       fmt_ms(chaos.p99_ms), std::to_string(chaos.reroutes),
                       std::to_string(chaos.rerouted_calls)});
  chaos_table.print();
  JsonObject& chaos_row = report.add_row();
  chaos_row.set("k", 3);
  chaos_row.set("workload", std::string("service-bound"));
  chaos_row.set("proxy", std::string("packing-chaos-kill"));
  chaos_row.set("success", chaos.success);
  chaos_row.set("goodput_cps", chaos.goodput_cps);
  chaos_row.set("p99_ms", chaos.p99_ms);
  chaos_row.set("reroutes", chaos.reroutes);
  chaos_row.set("rerouted_calls", chaos.rerouted_calls);

  std::string path = report.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
