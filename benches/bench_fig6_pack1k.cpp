// Figure 6: packing 1 KB messages. Paper: Our Approach remains the least
// time consuming across the M sweep (moderate payloads).
#include "figure_common.hpp"

int main() {
  return spi::bench::run_figure_bench(
      {"Figure 6", "fig6_pack1k", 1000,
       "Our Approach fastest for M>1 (moderate payload); overhead still "
       "dominated by per-message costs"});
}
