// Related-work baseline bench (§2.2): parameterized client-side message
// caching (Devaram & Andresen) measured on this stack, using
// google-benchmark. Shows (a) how much serialization work the cache
// bypasses, and (b) why the paper calls it orthogonal to packing — it
// cuts CPU per message, not the number of messages.
#include <benchmark/benchmark.h>

#include "benchsupport/workload.hpp"
#include "core/request_cache.hpp"
#include "core/wire.hpp"
#include "soap/envelope.hpp"

namespace {

using namespace spi;

std::vector<core::ServiceCall> workload(size_t payload) {
  // 64 calls, same shape, different payloads — the cache's sweet spot.
  return bench::make_echo_calls(64, payload, /*seed=*/0xCA);
}

void BM_SerializeFull(benchmark::State& state) {
  auto calls = workload(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const auto& call = calls[i++ % calls.size()];
    std::string envelope =
        soap::build_envelope(core::wire::serialize_single_request(call));
    bytes += static_cast<std::int64_t>(envelope.size());
    benchmark::DoNotOptimize(envelope);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SerializeFull)->Arg(10)->Arg(1000)->Arg(100000);

void BM_SerializeCached(benchmark::State& state) {
  auto calls = workload(static_cast<size_t>(state.range(0)));
  core::RequestTemplateCache cache;
  size_t i = 0;
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const auto& call = calls[i++ % calls.size()];
    std::string envelope = cache.render(call);
    bytes += static_cast<std::int64_t>(envelope.size());
    benchmark::DoNotOptimize(envelope);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SerializeCached)->Arg(10)->Arg(1000)->Arg(100000);

void BM_PackedSerialize64(benchmark::State& state) {
  // For scale: packing the same 64 calls into one envelope — the paper's
  // approach attacks message COUNT, the cache attacks per-message cost.
  auto calls = workload(static_cast<size_t>(state.range(0)));
  std::int64_t bytes = 0;
  for (auto _ : state) {
    std::string envelope =
        soap::build_envelope(core::wire::serialize_packed_request(calls));
    bytes += static_cast<std::int64_t>(envelope.size());
    benchmark::DoNotOptimize(envelope);
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_PackedSerialize64)->Arg(10)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
