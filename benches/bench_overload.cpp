// Overload study (DESIGN.md §11): goodput and tail latency of a staged
// server at 1x / 2x / 4x saturation, with the shed-don't-block admission
// path off (unbounded application queue — arriving work waits) versus on
// (bounded queue + adaptive AIMD concurrency limiter — excess work is
// answered 503/CapacityExceeded immediately).
//
// The application stage runs `app_threads` workers at ~`work_ms` per
// call, so its capacity is app_threads/work_ms calls per second; offered
// load is `multiplier * app_threads` closed-loop client threads. The
// claim under test: shedding holds p99 near the service time and keeps
// goodput at capacity, while blocking lets queueing delay grow with the
// overload factor. The default 20 ms service time keeps the application
// stage (200 calls/s) — not the simulated link — the bottleneck, so the
// admission policy is actually what's being exercised.
//
// Environment overrides:
//   SPI_BENCH_calls      calls per client thread per cell (default 40)
//   SPI_BENCH_work_ms    per-call service time, ms (default 20)
//   plus the usual SPI_LINK_* testbed knobs (benchsupport/harness.hpp).
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "benchsupport/harness.hpp"
#include "benchsupport/histogram.hpp"
#include "resilience/retry.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

constexpr size_t kAppThreads = 4;

struct OverloadCell {
  double goodput_cps = 0;  // successful calls per second (wall)
  double p50_ms = 0;       // latency of SUCCESSFUL calls only
  double p99_ms = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t other = 0;
};

OverloadCell run_cell(bool shedding, size_t multiplier, size_t calls,
                      int work_ms) {
  FixtureOptions options;
  options.link = link_params_from_env();
  options.server.staged = true;
  options.server.application_threads = kAppThreads;
  options.server.protocol_threads = kAppThreads * 4 + 4;
  if (shedding) {
    options.server.application_queue_capacity = kAppThreads * 2;
    AdaptiveLimiterOptions adaptive;
    adaptive.min_limit = 1;
    adaptive.max_limit = kAppThreads * 8;
    adaptive.initial_limit = kAppThreads * 2;
    options.server.adaptive_limit = adaptive;
  }
  EchoFixture fixture(options);

  const size_t threads = kAppThreads * multiplier;
  std::atomic<std::uint64_t> ok{0}, shed{0}, other{0};
  LatencyHistogram latency;  // successful calls only; recording is atomic

  Stopwatch wall;
  {
    std::vector<std::jthread> workers;
    for (size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        core::SpiClient client(fixture.transport(),
                               fixture.server().endpoint());
        for (size_t i = 0; i < calls; ++i) {
          Stopwatch watch;
          auto outcome =
              client.call("EchoService", "Delay",
                          {{"milliseconds", soap::Value(work_ms)}});
          if (outcome.ok()) {
            latency.record_ms(watch.elapsed_ms());
            ok.fetch_add(1, std::memory_order_relaxed);
          } else if (resilience::fault_cause(outcome.error()) ==
                     ErrorCode::kCapacityExceeded) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            other.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  double seconds = std::chrono::duration<double>(wall.elapsed()).count();

  OverloadCell cell;
  cell.ok = ok.load();
  cell.shed = shed.load();
  cell.other = other.load();
  cell.goodput_cps = static_cast<double>(cell.ok) / seconds;
  cell.p50_ms = latency.p50_us() / 1e3;
  cell.p99_ms = latency.p99_us() / 1e3;
  return cell;
}

}  // namespace

int main() {
  Config env = Config::from_env("SPI_BENCH_");
  const size_t calls = static_cast<size_t>(env.get_int_or("calls", 40));
  const int work_ms = static_cast<int>(env.get_int_or("work_ms", 20));

  std::printf("=== Overload study: shed-don't-block vs blocking queue ===\n");
  std::printf(
      "application stage: %zu workers x %d ms/call; offered load = "
      "multiplier x %zu closed-loop threads, %zu calls each\n"
      "shed = bounded queue (%zu) + adaptive AIMD limiter; block = "
      "unbounded queue\n\n",
      kAppThreads, work_ms, kAppThreads, calls, kAppThreads * 2);

  Table table({"load", "admission", "goodput calls/s", "p50 (ms)",
               "p99 (ms)", "ok", "shed", "errors"});
  for (size_t multiplier : {1, 2, 4}) {
    for (bool shedding : {false, true}) {
      OverloadCell cell = run_cell(shedding, multiplier, calls, work_ms);
      table.add_row({std::to_string(multiplier) + "x",
                     shedding ? "shed" : "block", fmt_ms(cell.goodput_cps),
                     fmt_ms(cell.p50_ms), fmt_ms(cell.p99_ms),
                     std::to_string(cell.ok), std::to_string(cell.shed),
                     std::to_string(cell.other)});
    }
  }
  table.print();
  return 0;
}
