// Micro-benchmarks (google-benchmark) for the XML substrate: the tag-trie
// optimization from Chiu et al. (§2.2, reference [2]) against linear tag
// matching, plus parse/serialize throughput on packed envelopes.
#include <benchmark/benchmark.h>

#include "benchsupport/workload.hpp"
#include "core/wire.hpp"
#include "soap/streaming.hpp"
#include "soap/envelope.hpp"
#include "xml/parser.hpp"
#include "xml/trie.hpp"

namespace {

using namespace spi;

// The tag vocabulary of an SPI envelope (what the deserializer matches).
const std::vector<std::string>& spi_tags() {
  static const std::vector<std::string> tags = {
      "Envelope", "Header",   "Body",         "Fault",
      "Parallel_Method",      "Call",         "Parallel_Response",
      "CallResponse",         "return",       "item",
      "faultcode", "faultstring", "faultactor", "detail",
      "Security", "UsernameToken", "Username", "Password",
      "Nonce",    "Created",  "Timestamp",    "data",
  };
  return tags;
}

// A realistic stream of tags to classify: what a packed envelope parse
// would look up, with namespace prefixes.
std::vector<std::string> tag_stream(size_t n) {
  static const char* kStream[] = {
      "SOAP-ENV:Envelope", "SOAP-ENV:Body",  "spi:Parallel_Method",
      "spi:Call",          "data",           "spi:Call",
      "data",              "spi:CallResponse", "return",
      "item",              "SOAP-ENV:Fault", "faultstring",
  };
  std::vector<std::string> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    stream.emplace_back(kStream[i % std::size(kStream)]);
  }
  return stream;
}

void BM_TagMatchTrie(benchmark::State& state) {
  xml::TagTrie trie;
  for (const auto& tag : spi_tags()) trie.insert(tag);
  auto stream = tag_stream(1024);
  for (auto _ : state) {
    int sum = 0;
    for (const auto& tag : stream) sum += trie.find_local(tag);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_TagMatchTrie);

void BM_TagMatchLinear(benchmark::State& state) {
  xml::LinearTagMatcher matcher;
  for (const auto& tag : spi_tags()) matcher.insert(tag);
  auto stream = tag_stream(1024);
  for (auto _ : state) {
    int sum = 0;
    for (const auto& tag : stream) sum += matcher.find_local(tag);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_TagMatchLinear);

void BM_PackedEnvelopeSerialize(benchmark::State& state) {
  auto calls = bench::make_echo_calls(static_cast<size_t>(state.range(0)),
                                      100, /*seed=*/1);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string envelope =
        soap::build_envelope(core::wire::serialize_packed_request(calls));
    bytes = envelope.size();
    benchmark::DoNotOptimize(envelope);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_PackedEnvelopeSerialize)->Arg(1)->Arg(16)->Arg(128);

void BM_PackedEnvelopeParse(benchmark::State& state) {
  auto calls = bench::make_echo_calls(static_cast<size_t>(state.range(0)),
                                      100, /*seed=*/2);
  std::string envelope =
      soap::build_envelope(core::wire::serialize_packed_request(calls));
  for (auto _ : state) {
    auto parsed = soap::Envelope::parse(envelope);
    auto request = core::wire::parse_request(parsed.value());
    benchmark::DoNotOptimize(request);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(envelope.size()));
}
BENCHMARK(BM_PackedEnvelopeParse)->Arg(1)->Arg(16)->Arg(128);

void BM_PackedEnvelopeParseStreaming(benchmark::State& state) {
  // The single-pass streaming parser vs the DOM path above.
  auto calls = bench::make_echo_calls(static_cast<size_t>(state.range(0)),
                                      100, /*seed=*/2);
  std::string envelope =
      soap::build_envelope(core::wire::serialize_packed_request(calls));
  for (auto _ : state) {
    auto request = core::wire::parse_request_streaming(envelope);
    benchmark::DoNotOptimize(request);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(envelope.size()));
}
BENCHMARK(BM_PackedEnvelopeParseStreaming)->Arg(1)->Arg(16)->Arg(128);

void BM_XmlDomParse100K(benchmark::State& state) {
  auto calls = bench::make_echo_calls(1, 100'000, /*seed=*/3);
  std::string envelope =
      soap::build_envelope(core::wire::serialize_packed_request(calls));
  for (auto _ : state) {
    auto document = xml::parse_document(envelope);
    benchmark::DoNotOptimize(document);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(envelope.size()));
}
BENCHMARK(BM_XmlDomParse100K);

}  // namespace

BENCHMARK_MAIN();
