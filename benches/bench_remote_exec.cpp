// Extension bench: the SPI remote-execution interface (core/remote_plan.hpp)
// against client-driven sequential calls, on the dependent
// reserve -> authorize -> confirm tail of the travel agent scenario
// (§4.3 steps 4-7 are inherently sequential — packing cannot batch them,
// remote execution can collapse them into one round trip).
#include <cstdio>

#include "benchsupport/harness.hpp"
#include "services/airline.hpp"
#include "services/creditcard.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

struct Node {
  net::SimTransport transport;
  core::ServiceRegistry registry;
  std::vector<std::unique_ptr<services::Airline>> airlines;
  std::unique_ptr<services::CreditCardService> card;
  std::unique_ptr<core::SpiServer> server;
  std::unique_ptr<core::SpiClient> client;

  explicit Node(std::uint64_t seed) : transport(link_params_from_env()) {
    airlines = services::make_demo_airlines(seed);
    for (auto& airline : airlines) airline->register_with(registry);
    card = std::make_unique<services::CreditCardService>("CardGate", seed);
    card->register_with(registry);
    core::ServerOptions options;
    options.pack_cost = pack_cost_from_env();
    server = std::make_unique<core::SpiServer>(
        transport, net::Endpoint{"node", 80}, registry, options);
    if (!server->start().ok()) throw SpiError(ErrorCode::kInternal, "start");
    core::ClientOptions client_options;
    client_options.pack_cost = pack_cost_from_env();
    client = std::make_unique<core::SpiClient>(transport, server->endpoint(),
                                               client_options);
  }
};

using soap::Value;

double run_client_driven(std::uint64_t seed) {
  Node node(seed);
  Stopwatch watch;
  auto reservation = node.client->call("AirChina", "Reserve",
                                       {{"flight_id", Value("CA-101")}});
  if (!reservation.ok()) throw SpiError(reservation.error());
  auto authorization = node.client->call(
      "CardGate", "Authorize",
      {{"card_number", Value("4111111111111111")},
       {"amount_cents", *reservation.value().field("price_cents")}});
  if (!authorization.ok()) throw SpiError(authorization.error());
  auto confirmation = node.client->call(
      "AirChina", "ConfirmReservation",
      {{"reservation_id", *reservation.value().field("reservation_id")},
       {"authorization_id",
        *authorization.value().field("authorization_id")}});
  if (!confirmation.ok()) throw SpiError(confirmation.error());
  return watch.elapsed_ms();
}

double run_remote_plan(std::uint64_t seed) {
  Node node(seed);
  core::RemotePlan plan;
  plan.step("AirChina", "Reserve",
            {core::PlanArg::value("flight_id", Value("CA-101"))})
      .step("CardGate", "Authorize",
            {core::PlanArg::value("card_number", Value("4111111111111111")),
             core::PlanArg::ref("amount_cents", 0, "price_cents")})
      .step("AirChina", "ConfirmReservation",
            {core::PlanArg::ref("reservation_id", 0, "reservation_id"),
             core::PlanArg::ref("authorization_id", 1, "authorization_id")});
  Stopwatch watch;
  auto outcomes = node.client->execute_plan(plan);
  if (!outcomes.ok()) throw SpiError(outcomes.error());
  for (const auto& outcome : outcomes.value()) {
    if (!outcome.ok()) throw SpiError(outcome.error());
  }
  return watch.elapsed_ms();
}

}  // namespace

int main() {
  const size_t reps = bench_reps(10);

  std::printf("=== Remote execution: dependent 3-step chain ===\n");
  std::printf(
      "reserve -> authorize -> confirm; sequential dependencies, so the "
      "pack interface cannot help — remote execution runs the chain "
      "server-side in one round trip\n\n");

  std::vector<double> sequential, remote;
  for (size_t i = 0; i < reps; ++i) {
    sequential.push_back(run_client_driven(0x0C0DE + i));
    remote.push_back(run_remote_plan(0x0C0DE + i));
  }
  auto s = summarize(std::move(sequential));
  auto r = summarize(std::move(remote));

  Table table({"variant", "messages", "median (ms)", "min (ms)", "max (ms)"});
  table.add_row({"client-driven sequential", "3", fmt_ms(s.median_ms),
                 fmt_ms(s.min_ms), fmt_ms(s.max_ms)});
  table.add_row({"remote execution plan", "1", fmt_ms(r.median_ms),
                 fmt_ms(r.min_ms), fmt_ms(r.max_ms)});
  table.print();
  std::printf("\nspeedup: %s\n", fmt_ratio(s.median_ms / r.median_ms).c_str());
  return 0;
}
