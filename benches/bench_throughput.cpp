// §3.2 design goal: "Improving throughput of client side ... which can
// greatly improve the throughput of whole application". Closed-loop
// throughput: C client threads issue batches of M calls continuously for a
// fixed window; we report completed calls/second for the packed strategy
// versus per-call messages, plus the server-side concurrency goal (staged
// pool) under load.
#include <atomic>
#include <cstdio>
#include <thread>

#include "benchsupport/harness.hpp"
#include "benchsupport/histogram.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

struct ThroughputResult {
  double calls_per_sec = 0;
  double p95_batch_ms = 0;
};

ThroughputResult run_window(EchoFixture& fixture, Strategy strategy,
                            size_t clients, size_t batch, size_t payload,
                            Duration window) {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  LatencyHistogram histogram;

  {
    std::vector<std::jthread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        core::ClientOptions options;
        options.pack_cost = pack_cost_from_env();
        core::SpiClient client(fixture.transport(),
                               fixture.server().endpoint(), options);
        auto calls = make_echo_calls(batch, payload, /*seed=*/0x7009 + c);
        while (!stop.load(std::memory_order_relaxed)) {
          Stopwatch watch;
          std::vector<core::CallOutcome> outcomes;
          if (strategy == Strategy::kPacked) {
            outcomes = client.call_packed(calls);
          } else {
            outcomes = client.call_serial(calls);
          }
          if (count_echo_errors(calls, outcomes) != 0) {
            throw SpiError(ErrorCode::kInternal, "throughput batch failed");
          }
          histogram.record_ms(watch.elapsed_ms());
          completed.fetch_add(batch, std::memory_order_relaxed);
        }
      });
    }
    RealClock::instance().sleep_for(window);
    stop.store(true);
  }

  ThroughputResult result;
  double seconds = std::chrono::duration<double>(window).count();
  result.calls_per_sec = static_cast<double>(completed.load()) / seconds;
  result.p95_batch_ms = histogram.p95_us() / 1e3;
  return result;
}

}  // namespace

int main() {
  const size_t payload = 100;
  const size_t batch = 16;
  const auto window = std::chrono::milliseconds(
      Config::from_env("SPI_BENCH_").get_int_or("window_ms", 1500));

  std::printf("=== Throughput (design goal §3.2) ===\n");
  std::printf(
      "closed loop, batches of M=%zu echo calls (N=%zu B), %lld ms window; "
      "expected: packed sustains several times the per-message call rate\n\n",
      batch, payload,
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(window)
              .count()));

  FixtureOptions options;
  options.link = link_params_from_env();
  options.server.protocol_threads = 64;
  options.server.application_threads = 16;
  options.server.pack_cost = pack_cost_from_env();
  EchoFixture fixture(options);

  Table table({"clients", "serial calls/s", "packed calls/s",
               "packed gain", "packed p95 batch (ms)"});
  for (size_t clients : {size_t{1}, size_t{4}, size_t{8}}) {
    auto serial = run_window(fixture, Strategy::kSerial, clients, batch,
                             payload, window);
    auto packed = run_window(fixture, Strategy::kPacked, clients, batch,
                             payload, window);
    table.add_row({std::to_string(clients),
                   fmt_ms(serial.calls_per_sec),
                   fmt_ms(packed.calls_per_sec),
                   fmt_ratio(packed.calls_per_sec / serial.calls_per_sec),
                   fmt_ms(packed.p95_batch_ms)});
  }
  table.print();
  return 0;
}
