// §3.2 design goal: "Improving throughput of client side ... which can
// greatly improve the throughput of whole application". Two studies:
//
//   1. Client strategy (simulated testbed link): C client threads issue
//      batches of M calls continuously for a fixed window; completed
//      calls/second for the packed strategy versus per-call messages.
//
//   2. Reactor loop scaling (DESIGN.md §13, real TCP loopback): the same
//      closed-loop packed workload against 1/2/4 reactor loops with
//      SO_REUSEPORT accept sharding and vectored sends, reporting
//      batches/second per loop count plus the per-loop connection spread
//      that proves the kernel sharding is balanced. Meaningful speedup
//      needs >= as many cores as loops; the loop-count sweep still
//      validates balance and the sendv path on smaller boxes.
//
// Environment: SPI_BENCH_WINDOW_MS, SPI_BENCH_MAX_LOOPS, plus the link
// overrides listed in benchsupport/harness.hpp. Emits BENCH_throughput.json
// (benchsupport/json_report.hpp).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

#include "benchsupport/harness.hpp"
#include "benchsupport/histogram.hpp"
#include "benchsupport/json_report.hpp"
#include "net/tcp_transport.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

struct ThroughputResult {
  double calls_per_sec = 0;
  double p95_batch_ms = 0;
};

ThroughputResult run_window(net::Transport& transport, net::Endpoint server,
                            core::ClientOptions client_options,
                            Strategy strategy, size_t clients, size_t batch,
                            size_t payload, Duration window) {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> stop{false};
  LatencyHistogram histogram;

  {
    std::vector<std::jthread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        core::SpiClient client(transport, server, client_options);
        auto calls = make_echo_calls(batch, payload, /*seed=*/0x7009 + c);
        while (!stop.load(std::memory_order_relaxed)) {
          Stopwatch watch;
          std::vector<core::CallOutcome> outcomes;
          if (strategy == Strategy::kPacked) {
            outcomes = client.call_packed(calls);
          } else {
            outcomes = client.call_serial(calls);
          }
          if (count_echo_errors(calls, outcomes) != 0) {
            throw SpiError(ErrorCode::kInternal, "throughput batch failed");
          }
          histogram.record_ms(watch.elapsed_ms());
          completed.fetch_add(batch, std::memory_order_relaxed);
        }
      });
    }
    RealClock::instance().sleep_for(window);
    stop.store(true);
  }

  ThroughputResult result;
  double seconds = std::chrono::duration<double>(window).count();
  result.calls_per_sec = static_cast<double>(completed.load()) / seconds;
  result.p95_batch_ms = histogram.p95_us() / 1e3;
  return result;
}

void run_strategy_study(Duration window, size_t batch, size_t payload,
                        JsonReport& report) {
  std::printf("=== Throughput (design goal §3.2) ===\n");
  std::printf(
      "closed loop, batches of M=%zu echo calls (N=%zu B), %lld ms window; "
      "expected: packed sustains several times the per-message call rate\n\n",
      batch, payload,
      static_cast<long long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(window)
              .count()));

  FixtureOptions options;
  options.link = link_params_from_env();
  options.server.protocol_threads = 64;
  options.server.application_threads = 16;
  options.server.pack_cost = pack_cost_from_env();
  EchoFixture fixture(options);

  core::ClientOptions client_options;
  client_options.pack_cost = pack_cost_from_env();

  Table table({"clients", "serial calls/s", "packed calls/s",
               "packed gain", "packed p95 batch (ms)"});
  for (size_t clients : {size_t{1}, size_t{4}, size_t{8}}) {
    auto serial = run_window(fixture.transport(),
                             fixture.server().endpoint(), client_options,
                             Strategy::kSerial, clients, batch, payload,
                             window);
    auto packed = run_window(fixture.transport(),
                             fixture.server().endpoint(), client_options,
                             Strategy::kPacked, clients, batch, payload,
                             window);
    table.add_row({std::to_string(clients),
                   fmt_ms(serial.calls_per_sec),
                   fmt_ms(packed.calls_per_sec),
                   fmt_ratio(packed.calls_per_sec / serial.calls_per_sec),
                   fmt_ms(packed.p95_batch_ms)});
    JsonObject& row = report.add_row();
    row.set("study", std::string("strategy"));
    row.set("clients", clients);
    row.set("serial_calls_per_sec", serial.calls_per_sec);
    row.set("packed_calls_per_sec", packed.calls_per_sec);
    row.set("packed_p95_batch_ms", packed.p95_batch_ms);
  }
  table.print();
}

void run_loop_scaling_study(Duration window, size_t batch, size_t payload,
                            size_t max_loops, JsonReport& report) {
  std::printf("\n=== Reactor loop scaling (DESIGN.md §13, TCP) ===\n");
  std::printf(
      "packed echo batches over loopback TCP, 8 keep-alive clients, "
      "reactor loops swept 1..%zu (%u cores); per-loop connection counts "
      "prove the SO_REUSEPORT sharding balance\n\n",
      max_loops, std::thread::hardware_concurrency());

  Table table({"loops", "sharded", "calls/s", "p95 batch (ms)",
               "conns/loop (min..max)", "sendv batches", "sendv segments"});
  for (size_t loops = 1; loops <= max_loops; loops *= 2) {
    net::TcpTransport transport;
    core::ServiceRegistry registry;
    services::register_echo_service(registry);

    core::ServerOptions options;
    options.protocol_threads = 16;
    options.application_threads = 8;
    options.reactor_threads = loops;
    options.pack_cost = pack_cost_from_env();
    core::SpiServer server(transport, net::Endpoint{"127.0.0.1", 0},
                           registry, options);
    if (Status started = server.start(); !started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.to_string().c_str());
      return;
    }

    core::ClientOptions client_options;
    client_options.keep_alive = true;
    client_options.pack_cost = pack_cost_from_env();
    const size_t clients = 8;
    auto packed = run_window(transport, server.endpoint(), client_options,
                             Strategy::kPacked, clients, batch, payload,
                             window);

    // Connection spread: keep-alive clients have closed by now, but the
    // accept counters record which loop each arrival landed on.
    const http::HttpServer& http = server.http_server();
    std::uint64_t min_accepts = ~0ull, max_accepts = 0;
    for (size_t i = 0; i < http.loop_count(); ++i) {
      const auto snapshot = http.loop_snapshot(i);
      min_accepts = std::min(min_accepts, snapshot.accepts);
      max_accepts = std::max(max_accepts, snapshot.accepts);
    }
    table.add_row({std::to_string(loops),
                   http.accept_sharded() ? "yes" : "no",
                   fmt_ms(packed.calls_per_sec),
                   fmt_ms(packed.p95_batch_ms),
                   std::to_string(min_accepts) + ".." +
                       std::to_string(max_accepts),
                   std::to_string(http.sendv_batches()),
                   std::to_string(http.sendv_segments())});
    JsonObject& row = report.add_row();
    row.set("study", std::string("loop_scaling"));
    row.set("loops", loops);
    row.set("accept_sharded", static_cast<int>(http.accept_sharded()));
    row.set("calls_per_sec", packed.calls_per_sec);
    row.set("p95_batch_ms", packed.p95_batch_ms);
    row.set("loop_accepts_min", static_cast<std::int64_t>(min_accepts));
    row.set("loop_accepts_max", static_cast<std::int64_t>(max_accepts));
    row.set("sendv_batches", static_cast<std::int64_t>(http.sendv_batches()));
    row.set("sendv_segments",
            static_cast<std::int64_t>(http.sendv_segments()));
    server.stop();
  }
  table.print();
}

}  // namespace

int main() {
  const size_t payload = 100;
  const size_t batch = 16;
  Config env = Config::from_env("SPI_BENCH_");
  const auto window =
      std::chrono::milliseconds(env.get_int_or("window_ms", 1500));
  const size_t max_loops =
      static_cast<size_t>(env.get_int_or("max_loops", 4));

  JsonReport report("throughput");
  report.set("window_ms", static_cast<std::int64_t>(window.count()));
  report.set("batch", batch);
  report.set("payload_bytes", payload);
  report.set("hardware_concurrency",
             static_cast<std::int64_t>(std::thread::hardware_concurrency()));

  run_strategy_study(window, batch, payload, report);
  run_loop_scaling_study(window, batch, payload, max_loops, report);

  const std::string path = report.write();
  if (!path.empty()) std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
