// §4.3: the optimized travel agent service. Paper deployment: the agent on
// the client node; airline, hotel, and credit card services on three
// server nodes. Eleven service invocations; packing steps 1 and 3 turns
// 11 messages into 7. Paper result: 408 ms -> 301 ms (~26% faster),
// averaged over 10 runs.
#include <cstdio>

#include "benchsupport/harness.hpp"
#include "services/airline.hpp"
#include "services/creditcard.hpp"
#include "services/hotel.hpp"
#include "services/travel_agent.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

struct Deployment {
  // One SimTransport = the client node's network segment; the three
  // service endpoints live behind it like the paper's three server nodes.
  net::SimTransport transport;
  core::ServiceRegistry airline_registry;
  core::ServiceRegistry hotel_registry;
  core::ServiceRegistry card_registry;
  std::vector<std::unique_ptr<services::Airline>> airlines;
  std::vector<std::unique_ptr<services::Hotel>> hotels;
  std::unique_ptr<services::CreditCardService> card;
  std::unique_ptr<core::SpiServer> airline_server;
  std::unique_ptr<core::SpiServer> hotel_server;
  std::unique_ptr<core::SpiServer> card_server;

  explicit Deployment(std::uint64_t seed)
      : transport(link_params_from_env()) {
    airlines = services::make_demo_airlines(seed);
    for (auto& airline : airlines) airline->register_with(airline_registry);
    hotels = services::make_demo_hotels(seed);
    for (auto& hotel : hotels) hotel->register_with(hotel_registry);
    card = std::make_unique<services::CreditCardService>("CardGate", seed);
    card->register_with(card_registry);

    core::ServerOptions server_options;
    server_options.pack_cost = pack_cost_from_env();
    airline_server = std::make_unique<core::SpiServer>(
        transport, net::Endpoint{"airline-node", 80}, airline_registry,
        server_options);
    hotel_server = std::make_unique<core::SpiServer>(
        transport, net::Endpoint{"hotel-node", 80}, hotel_registry,
        server_options);
    card_server = std::make_unique<core::SpiServer>(
        transport, net::Endpoint{"card-node", 80}, card_registry,
        server_options);
    if (!airline_server->start().ok() || !hotel_server->start().ok() ||
        !card_server->start().ok()) {
      throw SpiError(ErrorCode::kInternal, "deployment failed to start");
    }
  }
};

double run_booking_ms(bool use_packing, std::uint64_t seed) {
  Deployment deployment(seed);
  core::ClientOptions client_options;
  client_options.pack_cost = pack_cost_from_env();
  core::SpiClient airline_client(deployment.transport,
                                 deployment.airline_server->endpoint(),
                                 client_options);
  core::SpiClient hotel_client(deployment.transport,
                               deployment.hotel_server->endpoint(),
                               client_options);
  core::SpiClient card_client(deployment.transport,
                              deployment.card_server->endpoint(),
                              client_options);

  services::TravelAgentConfig config;
  config.airline_services = {"AirChina", "PacificWings", "NimbusAir"};
  config.hotel_services = {"GrandPalm", "SeasideInn", "LagoonResort"};
  config.use_packing = use_packing;
  services::TravelAgent agent(airline_client, hotel_client, card_client,
                              config);

  Stopwatch stopwatch;
  auto itinerary = agent.book();
  double elapsed = stopwatch.elapsed_ms();
  if (!itinerary.ok()) {
    throw SpiError(itinerary.error());
  }
  if (itinerary.value().invocations != 11) {
    throw SpiError(ErrorCode::kInternal, "expected 11 invocations, got " +
                       std::to_string(itinerary.value().invocations));
  }
  size_t expected_messages = use_packing ? 7 : 11;
  if (itinerary.value().messages != expected_messages) {
    throw SpiError(ErrorCode::kInternal, "unexpected message count");
  }
  return elapsed;
}

}  // namespace

int main() {
  const size_t reps = bench_reps(10);  // the paper repeated 10 times

  std::printf("=== Travel agent service (paper §4.3) ===\n");
  std::printf(
      "paper: 11 invocations; 408 ms unoptimized vs 301 ms packed (~26%% "
      "improvement)\n\n");

  std::vector<double> unpacked, packed;
  for (size_t i = 0; i < reps; ++i) {
    unpacked.push_back(run_booking_ms(false, 0xBEEF + i));
    packed.push_back(run_booking_ms(true, 0xBEEF + i));
  }
  auto u = summarize(unpacked);
  auto p = summarize(packed);

  Table table({"variant", "messages", "median (ms)", "mean (ms)",
               "min (ms)", "max (ms)"});
  table.add_row({"Without optimization", "11", fmt_ms(u.median_ms),
                 fmt_ms(u.mean_ms), fmt_ms(u.min_ms), fmt_ms(u.max_ms)});
  table.add_row({"With pack interface", "7", fmt_ms(p.median_ms),
                 fmt_ms(p.mean_ms), fmt_ms(p.min_ms), fmt_ms(p.max_ms)});
  table.print();

  std::printf("\nimprovement: %.1f%% (paper: ~26%%)\n",
              (1.0 - p.median_ms / u.median_ms) * 100.0);
  return 0;
}
