// Ablation of the pack-cost calibration (DESIGN.md §2, core/pack_cost.hpp):
// the figure benches charge the 2006 Java stack's packed-message handling
// overhead; this bench turns it off to show the native C++ stack, where
// the single-pass assembler/dispatcher keep packing profitable even at the
// paper's 100 KB "huge payload" point — i.e. Figure 7's inversion is a
// property of the original stack's pack overhead, not of the idea.
#include <cstdio>

#include "benchsupport/harness.hpp"

using namespace spi;
using namespace spi::bench;

namespace {

double packed_over_serial(size_t m, size_t payload, bool calibrated,
                          size_t reps) {
  FixtureOptions options;
  options.link = link_params_from_env();
  if (calibrated) {
    options.server.pack_cost = pack_cost_from_env();
    options.client.pack_cost = pack_cost_from_env();
  }
  options.server.protocol_threads = 160;
  EchoFixture fixture(options);
  auto calls = make_echo_calls(m, payload, /*seed=*/0xAB1 + m);
  double serial =
      run_repeated(fixture.client(), calls, Strategy::kSerial, reps)
          .median_ms;
  double packed =
      run_repeated(fixture.client(), calls, Strategy::kPacked, reps)
          .median_ms;
  return serial / packed;
}

}  // namespace

int main() {
  const size_t reps = bench_reps(3);
  const size_t payload = 100'000;  // Figure 7's regime

  std::printf("=== Ablation: calibrated 2006 pack cost vs native C++ ===\n");
  std::printf(
      "speedup of Our Approach over No Optimization at N = %zu B; values < "
      "1 mean packing loses (the paper's Figure 7 result)\n\n",
      payload);

  Table table({"M", "calibrated (Java-era)", "native C++"});
  for (size_t m : {size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    double java = packed_over_serial(m, payload, true, reps);
    double native = packed_over_serial(m, payload, false, reps);
    table.add_row({std::to_string(m), fmt_ratio(java), fmt_ratio(native)});
  }
  table.print();
  std::printf(
      "\nexpected: calibrated < 1.0x (packing loses, matching Figure 7); "
      "native > 1.0x (modern stack keeps winning)\n");
  return 0;
}
