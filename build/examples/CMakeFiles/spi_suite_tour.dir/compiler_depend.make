# Empty compiler generated dependencies file for spi_suite_tour.
# This may be replaced when dependencies are built.
