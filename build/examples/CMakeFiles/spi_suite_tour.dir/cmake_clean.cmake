file(REMOVE_RECURSE
  "CMakeFiles/spi_suite_tour.dir/spi_suite_tour.cpp.o"
  "CMakeFiles/spi_suite_tour.dir/spi_suite_tour.cpp.o.d"
  "spi_suite_tour"
  "spi_suite_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_suite_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
