file(REMOVE_RECURSE
  "CMakeFiles/travel_agent_demo.dir/travel_agent_demo.cpp.o"
  "CMakeFiles/travel_agent_demo.dir/travel_agent_demo.cpp.o.d"
  "travel_agent_demo"
  "travel_agent_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_agent_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
