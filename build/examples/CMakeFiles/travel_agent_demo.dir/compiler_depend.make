# Empty compiler generated dependencies file for travel_agent_demo.
# This may be replaced when dependencies are built.
