# Empty dependencies file for secure_echo.
# This may be replaced when dependencies are built.
