file(REMOVE_RECURSE
  "CMakeFiles/secure_echo.dir/secure_echo.cpp.o"
  "CMakeFiles/secure_echo.dir/secure_echo.cpp.o.d"
  "secure_echo"
  "secure_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
