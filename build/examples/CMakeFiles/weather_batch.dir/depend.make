# Empty dependencies file for weather_batch.
# This may be replaced when dependencies are built.
