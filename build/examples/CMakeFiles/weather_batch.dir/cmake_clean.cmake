file(REMOVE_RECURSE
  "CMakeFiles/weather_batch.dir/weather_batch.cpp.o"
  "CMakeFiles/weather_batch.dir/weather_batch.cpp.o.d"
  "weather_batch"
  "weather_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
