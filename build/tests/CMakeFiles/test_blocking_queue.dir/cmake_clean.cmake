file(REMOVE_RECURSE
  "CMakeFiles/test_blocking_queue.dir/concurrency/test_blocking_queue.cpp.o"
  "CMakeFiles/test_blocking_queue.dir/concurrency/test_blocking_queue.cpp.o.d"
  "test_blocking_queue"
  "test_blocking_queue.pdb"
  "test_blocking_queue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocking_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
