# Empty dependencies file for test_auto_batcher.
# This may be replaced when dependencies are built.
