file(REMOVE_RECURSE
  "CMakeFiles/test_auto_batcher.dir/core/test_auto_batcher.cpp.o"
  "CMakeFiles/test_auto_batcher.dir/core/test_auto_batcher.cpp.o.d"
  "test_auto_batcher"
  "test_auto_batcher.pdb"
  "test_auto_batcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_batcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
