file(REMOVE_RECURSE
  "CMakeFiles/test_xml_writer.dir/xml/test_writer.cpp.o"
  "CMakeFiles/test_xml_writer.dir/xml/test_writer.cpp.o.d"
  "test_xml_writer"
  "test_xml_writer.pdb"
  "test_xml_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
