file(REMOVE_RECURSE
  "CMakeFiles/test_request_cache.dir/core/test_request_cache.cpp.o"
  "CMakeFiles/test_request_cache.dir/core/test_request_cache.cpp.o.d"
  "test_request_cache"
  "test_request_cache.pdb"
  "test_request_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_request_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
