# Empty dependencies file for test_xml_dom.
# This may be replaced when dependencies are built.
