file(REMOVE_RECURSE
  "CMakeFiles/test_xml_dom.dir/xml/test_dom.cpp.o"
  "CMakeFiles/test_xml_dom.dir/xml/test_dom.cpp.o.d"
  "test_xml_dom"
  "test_xml_dom.pdb"
  "test_xml_dom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_dom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
