file(REMOVE_RECURSE
  "CMakeFiles/test_timeouts.dir/core/test_timeouts.cpp.o"
  "CMakeFiles/test_timeouts.dir/core/test_timeouts.cpp.o.d"
  "test_timeouts"
  "test_timeouts.pdb"
  "test_timeouts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
