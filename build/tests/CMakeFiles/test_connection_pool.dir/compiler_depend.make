# Empty compiler generated dependencies file for test_connection_pool.
# This may be replaced when dependencies are built.
