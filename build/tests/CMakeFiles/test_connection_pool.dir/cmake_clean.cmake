file(REMOVE_RECURSE
  "CMakeFiles/test_connection_pool.dir/http/test_connection_pool.cpp.o"
  "CMakeFiles/test_connection_pool.dir/http/test_connection_pool.cpp.o.d"
  "test_connection_pool"
  "test_connection_pool.pdb"
  "test_connection_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_connection_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
