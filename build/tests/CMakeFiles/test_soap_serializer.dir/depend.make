# Empty dependencies file for test_soap_serializer.
# This may be replaced when dependencies are built.
