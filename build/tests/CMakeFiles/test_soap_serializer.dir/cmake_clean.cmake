file(REMOVE_RECURSE
  "CMakeFiles/test_soap_serializer.dir/soap/test_serializer.cpp.o"
  "CMakeFiles/test_soap_serializer.dir/soap/test_serializer.cpp.o.d"
  "test_soap_serializer"
  "test_soap_serializer.pdb"
  "test_soap_serializer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap_serializer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
