# Empty compiler generated dependencies file for test_xml_text.
# This may be replaced when dependencies are built.
