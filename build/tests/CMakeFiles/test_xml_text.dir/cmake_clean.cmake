file(REMOVE_RECURSE
  "CMakeFiles/test_xml_text.dir/xml/test_text.cpp.o"
  "CMakeFiles/test_xml_text.dir/xml/test_text.cpp.o.d"
  "test_xml_text"
  "test_xml_text.pdb"
  "test_xml_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
