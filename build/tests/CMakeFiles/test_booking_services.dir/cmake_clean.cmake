file(REMOVE_RECURSE
  "CMakeFiles/test_booking_services.dir/services/test_booking_services.cpp.o"
  "CMakeFiles/test_booking_services.dir/services/test_booking_services.cpp.o.d"
  "test_booking_services"
  "test_booking_services.pdb"
  "test_booking_services[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_booking_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
