# Empty dependencies file for test_booking_services.
# This may be replaced when dependencies are built.
