# Empty compiler generated dependencies file for test_server_features.
# This may be replaced when dependencies are built.
