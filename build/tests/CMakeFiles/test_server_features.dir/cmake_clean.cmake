file(REMOVE_RECURSE
  "CMakeFiles/test_server_features.dir/core/test_server_features.cpp.o"
  "CMakeFiles/test_server_features.dir/core/test_server_features.cpp.o.d"
  "test_server_features"
  "test_server_features.pdb"
  "test_server_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
