# Empty dependencies file for test_xml_namespaces.
# This may be replaced when dependencies are built.
