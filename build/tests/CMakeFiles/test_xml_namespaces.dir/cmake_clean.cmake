file(REMOVE_RECURSE
  "CMakeFiles/test_xml_namespaces.dir/xml/test_namespaces.cpp.o"
  "CMakeFiles/test_xml_namespaces.dir/xml/test_namespaces.cpp.o.d"
  "test_xml_namespaces"
  "test_xml_namespaces.pdb"
  "test_xml_namespaces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_namespaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
