file(REMOVE_RECURSE
  "CMakeFiles/test_http_parser.dir/http/test_parser.cpp.o"
  "CMakeFiles/test_http_parser.dir/http/test_parser.cpp.o.d"
  "test_http_parser"
  "test_http_parser.pdb"
  "test_http_parser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
