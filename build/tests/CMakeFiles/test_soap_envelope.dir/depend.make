# Empty dependencies file for test_soap_envelope.
# This may be replaced when dependencies are built.
