file(REMOVE_RECURSE
  "CMakeFiles/test_soap_envelope.dir/soap/test_envelope.cpp.o"
  "CMakeFiles/test_soap_envelope.dir/soap/test_envelope.cpp.o.d"
  "test_soap_envelope"
  "test_soap_envelope.pdb"
  "test_soap_envelope[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
