# Empty compiler generated dependencies file for test_assembler_dispatcher.
# This may be replaced when dependencies are built.
