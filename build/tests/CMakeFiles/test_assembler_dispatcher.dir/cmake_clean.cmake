file(REMOVE_RECURSE
  "CMakeFiles/test_assembler_dispatcher.dir/core/test_assembler_dispatcher.cpp.o"
  "CMakeFiles/test_assembler_dispatcher.dir/core/test_assembler_dispatcher.cpp.o.d"
  "test_assembler_dispatcher"
  "test_assembler_dispatcher.pdb"
  "test_assembler_dispatcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assembler_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
