file(REMOVE_RECURSE
  "CMakeFiles/test_random_clock.dir/common/test_random_clock.cpp.o"
  "CMakeFiles/test_random_clock.dir/common/test_random_clock.cpp.o.d"
  "test_random_clock"
  "test_random_clock.pdb"
  "test_random_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
