# Empty compiler generated dependencies file for test_random_clock.
# This may be replaced when dependencies are built.
