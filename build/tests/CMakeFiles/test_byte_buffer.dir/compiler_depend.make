# Empty compiler generated dependencies file for test_byte_buffer.
# This may be replaced when dependencies are built.
