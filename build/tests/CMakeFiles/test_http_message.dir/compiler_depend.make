# Empty compiler generated dependencies file for test_http_message.
# This may be replaced when dependencies are built.
