file(REMOVE_RECURSE
  "CMakeFiles/test_simlink.dir/net/test_simlink.cpp.o"
  "CMakeFiles/test_simlink.dir/net/test_simlink.cpp.o.d"
  "test_simlink"
  "test_simlink.pdb"
  "test_simlink[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
