# Empty dependencies file for test_simlink.
# This may be replaced when dependencies are built.
