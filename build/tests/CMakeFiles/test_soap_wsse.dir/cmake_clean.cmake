file(REMOVE_RECURSE
  "CMakeFiles/test_soap_wsse.dir/soap/test_wsse.cpp.o"
  "CMakeFiles/test_soap_wsse.dir/soap/test_wsse.cpp.o.d"
  "test_soap_wsse"
  "test_soap_wsse.pdb"
  "test_soap_wsse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap_wsse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
