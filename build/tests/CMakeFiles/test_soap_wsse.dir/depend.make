# Empty dependencies file for test_soap_wsse.
# This may be replaced when dependencies are built.
