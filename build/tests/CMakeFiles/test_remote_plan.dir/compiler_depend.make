# Empty compiler generated dependencies file for test_remote_plan.
# This may be replaced when dependencies are built.
