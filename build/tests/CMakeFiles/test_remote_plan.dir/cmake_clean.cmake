file(REMOVE_RECURSE
  "CMakeFiles/test_remote_plan.dir/core/test_remote_plan.cpp.o"
  "CMakeFiles/test_remote_plan.dir/core/test_remote_plan.cpp.o.d"
  "test_remote_plan"
  "test_remote_plan.pdb"
  "test_remote_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
