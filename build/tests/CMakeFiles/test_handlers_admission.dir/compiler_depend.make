# Empty compiler generated dependencies file for test_handlers_admission.
# This may be replaced when dependencies are built.
