file(REMOVE_RECURSE
  "CMakeFiles/test_handlers_admission.dir/core/test_handlers_admission.cpp.o"
  "CMakeFiles/test_handlers_admission.dir/core/test_handlers_admission.cpp.o.d"
  "test_handlers_admission"
  "test_handlers_admission.pdb"
  "test_handlers_admission[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handlers_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
