# Empty compiler generated dependencies file for test_streaming_parse.
# This may be replaced when dependencies are built.
