file(REMOVE_RECURSE
  "CMakeFiles/test_streaming_parse.dir/core/test_streaming_parse.cpp.o"
  "CMakeFiles/test_streaming_parse.dir/core/test_streaming_parse.cpp.o.d"
  "test_streaming_parse"
  "test_streaming_parse.pdb"
  "test_streaming_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
