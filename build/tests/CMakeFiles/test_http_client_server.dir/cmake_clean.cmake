file(REMOVE_RECURSE
  "CMakeFiles/test_http_client_server.dir/http/test_client_server.cpp.o"
  "CMakeFiles/test_http_client_server.dir/http/test_client_server.cpp.o.d"
  "test_http_client_server"
  "test_http_client_server.pdb"
  "test_http_client_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_client_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
