# Empty compiler generated dependencies file for test_soap_robustness.
# This may be replaced when dependencies are built.
