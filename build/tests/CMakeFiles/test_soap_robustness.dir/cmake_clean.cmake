file(REMOVE_RECURSE
  "CMakeFiles/test_soap_robustness.dir/soap/test_robustness.cpp.o"
  "CMakeFiles/test_soap_robustness.dir/soap/test_robustness.cpp.o.d"
  "test_soap_robustness"
  "test_soap_robustness.pdb"
  "test_soap_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
