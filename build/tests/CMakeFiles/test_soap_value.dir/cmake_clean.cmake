file(REMOVE_RECURSE
  "CMakeFiles/test_soap_value.dir/soap/test_value.cpp.o"
  "CMakeFiles/test_soap_value.dir/soap/test_value.cpp.o.d"
  "test_soap_value"
  "test_soap_value.pdb"
  "test_soap_value[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
