# Empty dependencies file for test_xml_trie.
# This may be replaced when dependencies are built.
