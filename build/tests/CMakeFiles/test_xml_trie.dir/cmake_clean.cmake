file(REMOVE_RECURSE
  "CMakeFiles/test_xml_trie.dir/xml/test_trie.cpp.o"
  "CMakeFiles/test_xml_trie.dir/xml/test_trie.cpp.o.d"
  "test_xml_trie"
  "test_xml_trie.pdb"
  "test_xml_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xml_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
