file(REMOVE_RECURSE
  "CMakeFiles/test_echo_weather.dir/services/test_echo_weather.cpp.o"
  "CMakeFiles/test_echo_weather.dir/services/test_echo_weather.cpp.o.d"
  "test_echo_weather"
  "test_echo_weather.pdb"
  "test_echo_weather[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_echo_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
