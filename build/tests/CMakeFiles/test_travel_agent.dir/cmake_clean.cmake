file(REMOVE_RECURSE
  "CMakeFiles/test_travel_agent.dir/services/test_travel_agent.cpp.o"
  "CMakeFiles/test_travel_agent.dir/services/test_travel_agent.cpp.o.d"
  "test_travel_agent"
  "test_travel_agent.pdb"
  "test_travel_agent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_travel_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
