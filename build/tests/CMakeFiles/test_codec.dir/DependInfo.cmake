
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_codec.cpp" "tests/CMakeFiles/test_codec.dir/common/test_codec.cpp.o" "gcc" "tests/CMakeFiles/test_codec.dir/common/test_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchsupport/CMakeFiles/spi_benchsupport.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/spi_services.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/spi_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/spi_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/spi_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/spi_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/spi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
