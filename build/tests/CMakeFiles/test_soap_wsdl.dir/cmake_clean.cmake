file(REMOVE_RECURSE
  "CMakeFiles/test_soap_wsdl.dir/soap/test_wsdl.cpp.o"
  "CMakeFiles/test_soap_wsdl.dir/soap/test_wsdl.cpp.o.d"
  "test_soap_wsdl"
  "test_soap_wsdl.pdb"
  "test_soap_wsdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soap_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
