# Empty compiler generated dependencies file for test_soap_wsdl.
# This may be replaced when dependencies are built.
