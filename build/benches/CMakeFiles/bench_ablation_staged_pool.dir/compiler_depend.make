# Empty compiler generated dependencies file for bench_ablation_staged_pool.
# This may be replaced when dependencies are built.
