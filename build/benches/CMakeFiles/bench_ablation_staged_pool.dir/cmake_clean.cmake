file(REMOVE_RECURSE
  "../bench/bench_ablation_staged_pool"
  "../bench/bench_ablation_staged_pool.pdb"
  "CMakeFiles/bench_ablation_staged_pool.dir/bench_ablation_staged_pool.cpp.o"
  "CMakeFiles/bench_ablation_staged_pool.dir/bench_ablation_staged_pool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_staged_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
