# Empty dependencies file for bench_fig5_pack10b.
# This may be replaced when dependencies are built.
