file(REMOVE_RECURSE
  "../bench/bench_fig5_pack10b"
  "../bench/bench_fig5_pack10b.pdb"
  "CMakeFiles/bench_fig5_pack10b.dir/bench_fig5_pack10b.cpp.o"
  "CMakeFiles/bench_fig5_pack10b.dir/bench_fig5_pack10b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pack10b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
