# Empty dependencies file for bench_fig7_pack100k.
# This may be replaced when dependencies are built.
