file(REMOVE_RECURSE
  "../bench/bench_fig7_pack100k"
  "../bench/bench_fig7_pack100k.pdb"
  "CMakeFiles/bench_fig7_pack100k.dir/bench_fig7_pack100k.cpp.o"
  "CMakeFiles/bench_fig7_pack100k.dir/bench_fig7_pack100k.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pack100k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
