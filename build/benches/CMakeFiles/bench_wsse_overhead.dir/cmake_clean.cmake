file(REMOVE_RECURSE
  "../bench/bench_wsse_overhead"
  "../bench/bench_wsse_overhead.pdb"
  "CMakeFiles/bench_wsse_overhead.dir/bench_wsse_overhead.cpp.o"
  "CMakeFiles/bench_wsse_overhead.dir/bench_wsse_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wsse_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
