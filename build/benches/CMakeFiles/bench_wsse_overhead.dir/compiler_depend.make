# Empty compiler generated dependencies file for bench_wsse_overhead.
# This may be replaced when dependencies are built.
