file(REMOVE_RECURSE
  "../bench/bench_travel_agent"
  "../bench/bench_travel_agent.pdb"
  "CMakeFiles/bench_travel_agent.dir/bench_travel_agent.cpp.o"
  "CMakeFiles/bench_travel_agent.dir/bench_travel_agent.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_travel_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
