# Empty dependencies file for bench_xml_trie.
# This may be replaced when dependencies are built.
