file(REMOVE_RECURSE
  "../bench/bench_xml_trie"
  "../bench/bench_xml_trie.pdb"
  "CMakeFiles/bench_xml_trie.dir/bench_xml_trie.cpp.o"
  "CMakeFiles/bench_xml_trie.dir/bench_xml_trie.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xml_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
