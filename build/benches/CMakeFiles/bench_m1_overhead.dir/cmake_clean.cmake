file(REMOVE_RECURSE
  "../bench/bench_m1_overhead"
  "../bench/bench_m1_overhead.pdb"
  "CMakeFiles/bench_m1_overhead.dir/bench_m1_overhead.cpp.o"
  "CMakeFiles/bench_m1_overhead.dir/bench_m1_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_m1_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
