file(REMOVE_RECURSE
  "../bench/bench_remote_exec"
  "../bench/bench_remote_exec.pdb"
  "CMakeFiles/bench_remote_exec.dir/bench_remote_exec.cpp.o"
  "CMakeFiles/bench_remote_exec.dir/bench_remote_exec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
