# Empty compiler generated dependencies file for bench_ablation_packcost.
# This may be replaced when dependencies are built.
