file(REMOVE_RECURSE
  "../bench/bench_ablation_packcost"
  "../bench/bench_ablation_packcost.pdb"
  "CMakeFiles/bench_ablation_packcost.dir/bench_ablation_packcost.cpp.o"
  "CMakeFiles/bench_ablation_packcost.dir/bench_ablation_packcost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
