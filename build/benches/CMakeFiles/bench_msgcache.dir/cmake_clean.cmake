file(REMOVE_RECURSE
  "../bench/bench_msgcache"
  "../bench/bench_msgcache.pdb"
  "CMakeFiles/bench_msgcache.dir/bench_msgcache.cpp.o"
  "CMakeFiles/bench_msgcache.dir/bench_msgcache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msgcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
