# Empty dependencies file for bench_msgcache.
# This may be replaced when dependencies are built.
