# Empty compiler generated dependencies file for bench_auto_batcher.
# This may be replaced when dependencies are built.
