file(REMOVE_RECURSE
  "../bench/bench_auto_batcher"
  "../bench/bench_auto_batcher.pdb"
  "CMakeFiles/bench_auto_batcher.dir/bench_auto_batcher.cpp.o"
  "CMakeFiles/bench_auto_batcher.dir/bench_auto_batcher.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auto_batcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
