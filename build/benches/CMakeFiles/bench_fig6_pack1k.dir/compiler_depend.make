# Empty compiler generated dependencies file for bench_fig6_pack1k.
# This may be replaced when dependencies are built.
