# CMake generated Testfile for 
# Source directory: /root/repo/benches
# Build directory: /root/repo/build/benches
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
