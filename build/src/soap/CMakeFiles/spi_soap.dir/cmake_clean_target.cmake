file(REMOVE_RECURSE
  "libspi_soap.a"
)
