# Empty compiler generated dependencies file for spi_soap.
# This may be replaced when dependencies are built.
