file(REMOVE_RECURSE
  "CMakeFiles/spi_soap.dir/envelope.cpp.o"
  "CMakeFiles/spi_soap.dir/envelope.cpp.o.d"
  "CMakeFiles/spi_soap.dir/serializer.cpp.o"
  "CMakeFiles/spi_soap.dir/serializer.cpp.o.d"
  "CMakeFiles/spi_soap.dir/streaming.cpp.o"
  "CMakeFiles/spi_soap.dir/streaming.cpp.o.d"
  "CMakeFiles/spi_soap.dir/value.cpp.o"
  "CMakeFiles/spi_soap.dir/value.cpp.o.d"
  "CMakeFiles/spi_soap.dir/wsdl.cpp.o"
  "CMakeFiles/spi_soap.dir/wsdl.cpp.o.d"
  "CMakeFiles/spi_soap.dir/wsse.cpp.o"
  "CMakeFiles/spi_soap.dir/wsse.cpp.o.d"
  "libspi_soap.a"
  "libspi_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
