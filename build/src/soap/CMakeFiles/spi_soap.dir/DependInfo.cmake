
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soap/envelope.cpp" "src/soap/CMakeFiles/spi_soap.dir/envelope.cpp.o" "gcc" "src/soap/CMakeFiles/spi_soap.dir/envelope.cpp.o.d"
  "/root/repo/src/soap/serializer.cpp" "src/soap/CMakeFiles/spi_soap.dir/serializer.cpp.o" "gcc" "src/soap/CMakeFiles/spi_soap.dir/serializer.cpp.o.d"
  "/root/repo/src/soap/streaming.cpp" "src/soap/CMakeFiles/spi_soap.dir/streaming.cpp.o" "gcc" "src/soap/CMakeFiles/spi_soap.dir/streaming.cpp.o.d"
  "/root/repo/src/soap/value.cpp" "src/soap/CMakeFiles/spi_soap.dir/value.cpp.o" "gcc" "src/soap/CMakeFiles/spi_soap.dir/value.cpp.o.d"
  "/root/repo/src/soap/wsdl.cpp" "src/soap/CMakeFiles/spi_soap.dir/wsdl.cpp.o" "gcc" "src/soap/CMakeFiles/spi_soap.dir/wsdl.cpp.o.d"
  "/root/repo/src/soap/wsse.cpp" "src/soap/CMakeFiles/spi_soap.dir/wsse.cpp.o" "gcc" "src/soap/CMakeFiles/spi_soap.dir/wsse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/spi_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
