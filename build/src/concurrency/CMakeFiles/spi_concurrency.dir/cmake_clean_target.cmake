file(REMOVE_RECURSE
  "libspi_concurrency.a"
)
