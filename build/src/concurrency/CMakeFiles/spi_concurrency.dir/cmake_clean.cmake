file(REMOVE_RECURSE
  "CMakeFiles/spi_concurrency.dir/thread_pool.cpp.o"
  "CMakeFiles/spi_concurrency.dir/thread_pool.cpp.o.d"
  "libspi_concurrency.a"
  "libspi_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
