# Empty dependencies file for spi_concurrency.
# This may be replaced when dependencies are built.
