file(REMOVE_RECURSE
  "CMakeFiles/spi_benchsupport.dir/harness.cpp.o"
  "CMakeFiles/spi_benchsupport.dir/harness.cpp.o.d"
  "CMakeFiles/spi_benchsupport.dir/histogram.cpp.o"
  "CMakeFiles/spi_benchsupport.dir/histogram.cpp.o.d"
  "CMakeFiles/spi_benchsupport.dir/workload.cpp.o"
  "CMakeFiles/spi_benchsupport.dir/workload.cpp.o.d"
  "libspi_benchsupport.a"
  "libspi_benchsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_benchsupport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
