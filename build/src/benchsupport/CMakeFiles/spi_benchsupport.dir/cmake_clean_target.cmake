file(REMOVE_RECURSE
  "libspi_benchsupport.a"
)
