# Empty compiler generated dependencies file for spi_benchsupport.
# This may be replaced when dependencies are built.
