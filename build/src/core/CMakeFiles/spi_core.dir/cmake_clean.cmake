file(REMOVE_RECURSE
  "CMakeFiles/spi_core.dir/assembler.cpp.o"
  "CMakeFiles/spi_core.dir/assembler.cpp.o.d"
  "CMakeFiles/spi_core.dir/auto_batcher.cpp.o"
  "CMakeFiles/spi_core.dir/auto_batcher.cpp.o.d"
  "CMakeFiles/spi_core.dir/client.cpp.o"
  "CMakeFiles/spi_core.dir/client.cpp.o.d"
  "CMakeFiles/spi_core.dir/dispatcher.cpp.o"
  "CMakeFiles/spi_core.dir/dispatcher.cpp.o.d"
  "CMakeFiles/spi_core.dir/handlers.cpp.o"
  "CMakeFiles/spi_core.dir/handlers.cpp.o.d"
  "CMakeFiles/spi_core.dir/registry.cpp.o"
  "CMakeFiles/spi_core.dir/registry.cpp.o.d"
  "CMakeFiles/spi_core.dir/remote_plan.cpp.o"
  "CMakeFiles/spi_core.dir/remote_plan.cpp.o.d"
  "CMakeFiles/spi_core.dir/request_cache.cpp.o"
  "CMakeFiles/spi_core.dir/request_cache.cpp.o.d"
  "CMakeFiles/spi_core.dir/server.cpp.o"
  "CMakeFiles/spi_core.dir/server.cpp.o.d"
  "CMakeFiles/spi_core.dir/wire.cpp.o"
  "CMakeFiles/spi_core.dir/wire.cpp.o.d"
  "libspi_core.a"
  "libspi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
