
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assembler.cpp" "src/core/CMakeFiles/spi_core.dir/assembler.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/assembler.cpp.o.d"
  "/root/repo/src/core/auto_batcher.cpp" "src/core/CMakeFiles/spi_core.dir/auto_batcher.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/auto_batcher.cpp.o.d"
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/spi_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/client.cpp.o.d"
  "/root/repo/src/core/dispatcher.cpp" "src/core/CMakeFiles/spi_core.dir/dispatcher.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/dispatcher.cpp.o.d"
  "/root/repo/src/core/handlers.cpp" "src/core/CMakeFiles/spi_core.dir/handlers.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/handlers.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/spi_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/remote_plan.cpp" "src/core/CMakeFiles/spi_core.dir/remote_plan.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/remote_plan.cpp.o.d"
  "/root/repo/src/core/request_cache.cpp" "src/core/CMakeFiles/spi_core.dir/request_cache.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/request_cache.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/spi_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/server.cpp.o.d"
  "/root/repo/src/core/wire.cpp" "src/core/CMakeFiles/spi_core.dir/wire.cpp.o" "gcc" "src/core/CMakeFiles/spi_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/spi_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/spi_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/spi_http.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/spi_soap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
