file(REMOVE_RECURSE
  "libspi_core.a"
)
