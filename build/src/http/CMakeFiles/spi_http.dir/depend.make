# Empty dependencies file for spi_http.
# This may be replaced when dependencies are built.
