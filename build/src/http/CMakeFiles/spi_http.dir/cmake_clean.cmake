file(REMOVE_RECURSE
  "CMakeFiles/spi_http.dir/client.cpp.o"
  "CMakeFiles/spi_http.dir/client.cpp.o.d"
  "CMakeFiles/spi_http.dir/connection_pool.cpp.o"
  "CMakeFiles/spi_http.dir/connection_pool.cpp.o.d"
  "CMakeFiles/spi_http.dir/message.cpp.o"
  "CMakeFiles/spi_http.dir/message.cpp.o.d"
  "CMakeFiles/spi_http.dir/parser.cpp.o"
  "CMakeFiles/spi_http.dir/parser.cpp.o.d"
  "CMakeFiles/spi_http.dir/server.cpp.o"
  "CMakeFiles/spi_http.dir/server.cpp.o.d"
  "libspi_http.a"
  "libspi_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
