file(REMOVE_RECURSE
  "libspi_http.a"
)
