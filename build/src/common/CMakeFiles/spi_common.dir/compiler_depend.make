# Empty compiler generated dependencies file for spi_common.
# This may be replaced when dependencies are built.
