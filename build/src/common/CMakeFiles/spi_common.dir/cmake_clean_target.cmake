file(REMOVE_RECURSE
  "libspi_common.a"
)
