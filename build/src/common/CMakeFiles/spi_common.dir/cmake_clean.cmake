file(REMOVE_RECURSE
  "CMakeFiles/spi_common.dir/byte_buffer.cpp.o"
  "CMakeFiles/spi_common.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/spi_common.dir/clock.cpp.o"
  "CMakeFiles/spi_common.dir/clock.cpp.o.d"
  "CMakeFiles/spi_common.dir/codec.cpp.o"
  "CMakeFiles/spi_common.dir/codec.cpp.o.d"
  "CMakeFiles/spi_common.dir/config.cpp.o"
  "CMakeFiles/spi_common.dir/config.cpp.o.d"
  "CMakeFiles/spi_common.dir/error.cpp.o"
  "CMakeFiles/spi_common.dir/error.cpp.o.d"
  "CMakeFiles/spi_common.dir/logging.cpp.o"
  "CMakeFiles/spi_common.dir/logging.cpp.o.d"
  "CMakeFiles/spi_common.dir/random.cpp.o"
  "CMakeFiles/spi_common.dir/random.cpp.o.d"
  "CMakeFiles/spi_common.dir/string_util.cpp.o"
  "CMakeFiles/spi_common.dir/string_util.cpp.o.d"
  "libspi_common.a"
  "libspi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
