
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/byte_buffer.cpp" "src/common/CMakeFiles/spi_common.dir/byte_buffer.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/byte_buffer.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/common/CMakeFiles/spi_common.dir/clock.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/clock.cpp.o.d"
  "/root/repo/src/common/codec.cpp" "src/common/CMakeFiles/spi_common.dir/codec.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/codec.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/spi_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/config.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/common/CMakeFiles/spi_common.dir/error.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/error.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/spi_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/common/CMakeFiles/spi_common.dir/random.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/random.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/common/CMakeFiles/spi_common.dir/string_util.cpp.o" "gcc" "src/common/CMakeFiles/spi_common.dir/string_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
