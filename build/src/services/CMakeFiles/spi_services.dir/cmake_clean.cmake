file(REMOVE_RECURSE
  "CMakeFiles/spi_services.dir/airline.cpp.o"
  "CMakeFiles/spi_services.dir/airline.cpp.o.d"
  "CMakeFiles/spi_services.dir/creditcard.cpp.o"
  "CMakeFiles/spi_services.dir/creditcard.cpp.o.d"
  "CMakeFiles/spi_services.dir/echo.cpp.o"
  "CMakeFiles/spi_services.dir/echo.cpp.o.d"
  "CMakeFiles/spi_services.dir/hotel.cpp.o"
  "CMakeFiles/spi_services.dir/hotel.cpp.o.d"
  "CMakeFiles/spi_services.dir/travel_agent.cpp.o"
  "CMakeFiles/spi_services.dir/travel_agent.cpp.o.d"
  "CMakeFiles/spi_services.dir/weather.cpp.o"
  "CMakeFiles/spi_services.dir/weather.cpp.o.d"
  "libspi_services.a"
  "libspi_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
