# Empty compiler generated dependencies file for spi_services.
# This may be replaced when dependencies are built.
