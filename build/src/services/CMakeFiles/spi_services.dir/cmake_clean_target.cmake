file(REMOVE_RECURSE
  "libspi_services.a"
)
