
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/endpoint.cpp" "src/net/CMakeFiles/spi_net.dir/endpoint.cpp.o" "gcc" "src/net/CMakeFiles/spi_net.dir/endpoint.cpp.o.d"
  "/root/repo/src/net/sim_transport.cpp" "src/net/CMakeFiles/spi_net.dir/sim_transport.cpp.o" "gcc" "src/net/CMakeFiles/spi_net.dir/sim_transport.cpp.o.d"
  "/root/repo/src/net/simlink.cpp" "src/net/CMakeFiles/spi_net.dir/simlink.cpp.o" "gcc" "src/net/CMakeFiles/spi_net.dir/simlink.cpp.o.d"
  "/root/repo/src/net/tcp_transport.cpp" "src/net/CMakeFiles/spi_net.dir/tcp_transport.cpp.o" "gcc" "src/net/CMakeFiles/spi_net.dir/tcp_transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/spi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/spi_concurrency.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
