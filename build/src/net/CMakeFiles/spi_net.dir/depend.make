# Empty dependencies file for spi_net.
# This may be replaced when dependencies are built.
