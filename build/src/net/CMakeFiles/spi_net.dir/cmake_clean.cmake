file(REMOVE_RECURSE
  "CMakeFiles/spi_net.dir/endpoint.cpp.o"
  "CMakeFiles/spi_net.dir/endpoint.cpp.o.d"
  "CMakeFiles/spi_net.dir/sim_transport.cpp.o"
  "CMakeFiles/spi_net.dir/sim_transport.cpp.o.d"
  "CMakeFiles/spi_net.dir/simlink.cpp.o"
  "CMakeFiles/spi_net.dir/simlink.cpp.o.d"
  "CMakeFiles/spi_net.dir/tcp_transport.cpp.o"
  "CMakeFiles/spi_net.dir/tcp_transport.cpp.o.d"
  "libspi_net.a"
  "libspi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
