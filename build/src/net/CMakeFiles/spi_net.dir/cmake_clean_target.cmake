file(REMOVE_RECURSE
  "libspi_net.a"
)
