# Empty compiler generated dependencies file for spi_xml.
# This may be replaced when dependencies are built.
