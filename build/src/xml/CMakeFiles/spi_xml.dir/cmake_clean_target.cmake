file(REMOVE_RECURSE
  "libspi_xml.a"
)
