file(REMOVE_RECURSE
  "CMakeFiles/spi_xml.dir/namespaces.cpp.o"
  "CMakeFiles/spi_xml.dir/namespaces.cpp.o.d"
  "CMakeFiles/spi_xml.dir/parser.cpp.o"
  "CMakeFiles/spi_xml.dir/parser.cpp.o.d"
  "CMakeFiles/spi_xml.dir/text.cpp.o"
  "CMakeFiles/spi_xml.dir/text.cpp.o.d"
  "CMakeFiles/spi_xml.dir/trie.cpp.o"
  "CMakeFiles/spi_xml.dir/trie.cpp.o.d"
  "CMakeFiles/spi_xml.dir/writer.cpp.o"
  "CMakeFiles/spi_xml.dir/writer.cpp.o.d"
  "libspi_xml.a"
  "libspi_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spi_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
