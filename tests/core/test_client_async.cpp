// Async SPI client (DESIGN.md §16): the packed exchange as a reactor-side
// state machine — future/callback completion, the blocking API as a thin
// wrapper, AutoBatcher flushing without a parked pool thread, and hedged
// requests (fire at the learned quantile, first success wins, cancel the
// loser, debit the retry budget, never hedge non-idempotent calls).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "benchsupport/workload.hpp"
#include "core/auto_batcher.hpp"
#include "core/client.hpp"
#include "core/params.hpp"
#include "core/server.hpp"
#include "http/async_client.hpp"
#include "net/tcp_transport.hpp"
#include "services/echo.hpp"
#include "support/faulty_transport.hpp"

namespace spi {
namespace {

using namespace std::chrono_literals;
using core::CallOutcome;
using core::ServiceCall;
using soap::Value;

class AsyncSpiClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    // TailService.Get is idempotent and stalls while `stall_next_` holds
    // tokens — the knob that manufactures a tail-latency event on demand.
    // TailService.Put is byte-identical behavior but NON-idempotent.
    auto stalling = [this](const soap::Struct&) -> Result<Value> {
      if (stall_next_.fetch_sub(1, std::memory_order_acq_rel) > 0) {
        std::this_thread::sleep_for(300ms);
        return Value("slow");
      }
      return Value("fast");
    };
    // TailService.Race scripts the hedge/repack race: invocation 0 (the
    // primary leg) stalls; invocation 1 (the hedge leg) answers fast with
    // a retryable not-executed fault, so the winning round schedules a
    // partial re-pack; invocation 2 (the replay) succeeds.
    auto race = [this](const soap::Struct&) -> Result<Value> {
      int n = race_seq_.fetch_add(1, std::memory_order_acq_rel);
      if (n == 0) {
        std::this_thread::sleep_for(300ms);
        return Value("slow");
      }
      if (n == 1) {
        return Error(ErrorCode::kCapacityExceeded, "induced rejection");
      }
      return Value("ok");
    };
    core::ServiceBinder(registry_, "TailService")
        .bind_idempotent("Get", stalling)
        .bind("Put", stalling)
        .bind_idempotent("Race", race);
    server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"127.0.0.1", 0}, registry_);
    ASSERT_TRUE(server_->start().ok());
    reactor_.start();
    async_http_ = std::make_unique<http::AsyncHttpClient>(reactor_,
                                                          transport_);
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  std::unique_ptr<core::SpiClient> make_client(core::ClientOptions options) {
    options.async_client = async_http_.get();
    options.retry.idempotent = registry_.idempotency_predicate();
    return std::make_unique<core::SpiClient>(transport_, server_->endpoint(),
                                             std::move(options));
  }

  static core::ClientOptions hedged_options() {
    core::ClientOptions options;
    options.hedge.enabled = true;
    options.hedge.quantile = 0.5;
    options.hedge.min_delay = 2ms;
    options.hedge.warmup = 5;
    return options;
  }

  /// The in-flight gauge decrements AFTER the completion callback (the
  /// destructor's quiescence wait must cover callbacks), so a future can
  /// resolve a beat before the gauge drops: poll instead of asserting.
  static void wait_inflight_zero(core::SpiClient& client) {
    for (int i = 0; i < 200 && client.stats().async_inflight != 0; ++i) {
      std::this_thread::sleep_for(5ms);
    }
    EXPECT_EQ(client.stats().async_inflight, 0u);
  }

  /// Completes `n` fast TailService exchanges so the hedge policy's
  /// latency histogram passes warmup and learns a ~sub-millisecond p50.
  static void warm_hedge_policy(core::SpiClient& client, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      std::vector<ServiceCall> calls;
      calls.push_back(core::make_call("TailService", "Get", {}));
      auto result = client.execute_packed_future(std::move(calls)).get();
      ASSERT_TRUE(result.ok()) << result.error().to_string();
    }
  }

  net::TcpTransport transport_;
  core::ServiceRegistry registry_;
  std::atomic<int> stall_next_{0};
  std::atomic<int> race_seq_{0};
  std::unique_ptr<core::SpiServer> server_;
  Reactor reactor_;
  std::unique_ptr<http::AsyncHttpClient> async_http_;
};

TEST_F(AsyncSpiClientTest, FutureRoundTripPackedBatch) {
  auto client = make_client({});
  auto calls = bench::make_echo_calls(8, 32, /*seed=*/11);
  auto result = client
                    ->execute_packed_future(
                        std::vector<ServiceCall>(calls.begin(), calls.end()))
                    .get();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().size(), 8u);
  EXPECT_EQ(bench::count_echo_errors(calls, result.value()), 0u);
  wait_inflight_zero(*client);
}

TEST_F(AsyncSpiClientTest, CallbackDeliversOutcomesOffCallerThread) {
  auto client = make_client({});
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("EchoService", "Echo",
                                  {{"data", Value("async")}}));

  std::promise<core::SpiClient::PackedResult> delivered;
  std::atomic<bool> on_caller_thread{true};
  auto caller_id = std::this_thread::get_id();
  client->execute_packed_async(
      std::move(calls), core::PackMode::kPacked,
      [&](core::SpiClient::PackedResult result) {
        on_caller_thread.store(std::this_thread::get_id() == caller_id);
        delivered.set_value(std::move(result));
      });

  auto result = delivered.get_future().get();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].value().as_string(), "async");
  // Completion ran on the reactor loop thread, not the submitter.
  EXPECT_FALSE(on_caller_thread.load());
}

TEST_F(AsyncSpiClientTest, BlockingApiIsThinWrapperOverAsyncPath) {
  auto client = make_client({});
  ASSERT_TRUE(client->async_enabled());
  // call_packed routes execute_packed -> execute_packed_future: same
  // outcomes, same per-call fault shape as the thread-per-exchange path.
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("EchoService", "Echo",
                                  {{"data", Value("ok")}}));
  calls.push_back(core::make_call("EchoService", "NoSuchOperation", {}));
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok());
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].error().code(), ErrorCode::kFault);
}

TEST_F(AsyncSpiClientTest, ManyOutstandingExchangesOneLoopThread) {
  auto client = make_client({});
  constexpr int kBatches = 32;
  std::vector<std::future<core::SpiClient::PackedResult>> futures;
  futures.reserve(kBatches);
  for (int i = 0; i < kBatches; ++i) {
    auto calls = bench::make_echo_calls(4, 16, /*seed=*/100 + i);
    futures.push_back(client->execute_packed_future(
        std::vector<ServiceCall>(calls.begin(), calls.end())));
  }
  for (auto& future : futures) {
    auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().size(), 4u);
  }
  wait_inflight_zero(*client);
}

TEST_F(AsyncSpiClientTest, AutoBatcherFlushesThroughAsyncPathWithoutPoolThread) {
  auto client = make_client({});
  core::AutoBatcher::Options options;
  options.max_batch = 8;
  options.max_delay = 50ms;
  core::AutoBatcher batcher(*client, options);

  std::vector<std::future<CallOutcome>> futures;
  for (int i = 0; i < 24; ++i) {
    futures.push_back(batcher.call_async(
        "EchoService", "Echo", {{"data", Value("b" + std::to_string(i))}}));
  }
  batcher.flush();
  for (int i = 0; i < 24; ++i) {
    auto outcome = futures[i].get();
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
    EXPECT_EQ(outcome.value().as_string(), "b" + std::to_string(i));
  }
  auto stats = batcher.stats();
  EXPECT_EQ(stats.calls, 24u);
  EXPECT_GE(stats.batches, 1u);
  batcher.shutdown();
  wait_inflight_zero(*client);
}

// Regression: the hedge loser's kCancelled completion lands in the window
// AFTER the winner's result scheduled a re-pack round but BEFORE that
// round begins (round_seq is only bumped when the new round starts, so
// the seq guard alone does not stop it). It must be dropped like any
// stale callback — not fed to the retry ladder, where its terminal
// classification would abort the scheduled replay, orphan the backoff
// timer, and hand the caller the unretried per-call fault.
TEST_F(AsyncSpiClientTest, CancelledHedgeLoserDoesNotAbortScheduledRepack) {
  auto options = hedged_options();
  options.retry.max_attempts = 3;
  auto client = make_client(options);
  warm_hedge_policy(*client, 8);

  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("TailService", "Race", {}));
  auto result = client->execute_packed_future(std::move(calls)).get();

  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().size(), 1u);
  ASSERT_TRUE(result.value()[0].ok()) << result.value()[0].error().to_string();
  EXPECT_EQ(result.value()[0].value().as_string(), "ok");

  auto stats = client->stats();
  EXPECT_GE(stats.hedges_sent, 1u);
  EXPECT_GE(stats.hedges_won, 1u);
  // The replay the phantom kCancelled would have aborted actually ran.
  EXPECT_EQ(stats.partial_repacks, 1u);
  wait_inflight_zero(*client);
}

TEST_F(AsyncSpiClientTest, HedgeFiresOnStallAndWins) {
  auto client = make_client(hedged_options());
  warm_hedge_policy(*client, 8);

  // Manufacture the tail: the NEXT handler invocation sleeps 300ms. The
  // hedge fires at the learned p50 (clamped to 2ms), lands on a fresh
  // connection, finds the stall token spent, and answers fast.
  stall_next_.store(1);
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("TailService", "Get", {}));
  auto start = std::chrono::steady_clock::now();
  auto result = client->execute_packed_future(std::move(calls)).get();
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0].value().as_string(), "fast");
  // The exchange beat the 300ms stall: the hedge won.
  EXPECT_LT(elapsed, 250ms);

  auto stats = client->stats();
  EXPECT_EQ(stats.hedges_sent, 1u);
  EXPECT_EQ(stats.hedges_won, 1u);
  EXPECT_EQ(stats.hedges_cancelled, 0u);
}

TEST_F(AsyncSpiClientTest, PrimaryWinCancelsHedgeLeg) {
  auto client = make_client(hedged_options());
  warm_hedge_policy(*client, 8);

  // No stall: the primary answers first; the armed-and-fired hedge (or
  // armed-and-not-fired timer) must never double-complete the exchange.
  for (int i = 0; i < 20; ++i) {
    std::vector<ServiceCall> calls;
    calls.push_back(core::make_call("TailService", "Get", {}));
    auto result = client->execute_packed_future(std::move(calls)).get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }
  auto stats = client->stats();
  // Every fired hedge was settled exactly once: won by the hedge (it beat
  // a median-speed primary) or cancelled by the primary's win — never lost.
  EXPECT_EQ(stats.hedges_won + stats.hedges_cancelled, stats.hedges_sent);
  wait_inflight_zero(*client);
}

TEST_F(AsyncSpiClientTest, NonIdempotentCallsNeverHedge) {
  auto client = make_client(hedged_options());
  warm_hedge_policy(*client, 8);

  // TailService.Put is the same handler WITHOUT the idempotent trait: the
  // stall rides out the full 300ms because firing a second attempt could
  // execute the write twice.
  stall_next_.store(1);
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("TailService", "Put", {}));
  auto start = std::chrono::steady_clock::now();
  auto result = client->execute_packed_future(std::move(calls)).get();
  auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value()[0].value().as_string(), "slow");
  EXPECT_GE(elapsed, 250ms);
  EXPECT_EQ(client->stats().hedges_sent, 0u);
}

TEST_F(AsyncSpiClientTest, MixedBatchWithNonIdempotentCallDisablesHedging) {
  auto client = make_client(hedged_options());
  warm_hedge_policy(*client, 8);

  // One non-idempotent call poisons the whole packed message: the batch
  // crosses as ONE HTTP exchange, so hedging it re-executes everything.
  stall_next_.store(1);
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("TailService", "Get", {}));
  calls.push_back(core::make_call("TailService", "Put", {}));
  auto result = client->execute_packed_future(std::move(calls)).get();
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(client->stats().hedges_sent, 0u);
}

TEST_F(AsyncSpiClientTest, HedgesDebitRetryBudget) {
  auto options = hedged_options();
  // One token, no earn-back: exactly one hedge may EVER fire.
  options.retry.budget = 1.0;
  options.retry.deposit_per_call = 0.0;
  auto client = make_client(options);
  warm_hedge_policy(*client, 8);

  for (int i = 0; i < 3; ++i) {
    stall_next_.store(1);
    std::vector<ServiceCall> calls;
    calls.push_back(core::make_call("TailService", "Get", {}));
    auto result = client->execute_packed_future(std::move(calls)).get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
  }
  // Stalls 2 and 3 wanted a hedge too; the empty bucket said no.
  EXPECT_EQ(client->stats().hedges_sent, 1u);
}

TEST_F(AsyncSpiClientTest, ChaosSeverDuringHedgedExchangesAllRecover) {
  // Connections sever mid-stream at random while hedging and retries are
  // both live: severed legs must feed the retry ladder, hedge/primary
  // twins must not double-complete, and every exchange must still land.
  net::FaultPlan plan;
  plan.sever_rate = 0.2;
  plan.fault_window_bytes = 2048;
  plan.seed = 0x5eed;
  net::FaultyTransport chaos(transport_, plan);
  ASSERT_TRUE(chaos.supports_nonblocking_connect());

  Reactor chaos_reactor;
  chaos_reactor.start();
  http::AsyncHttpClient chaos_http(chaos_reactor, chaos);

  core::ClientOptions options = hedged_options();
  options.hedge.warmup = 3;
  options.retry.max_attempts = 6;
  options.retry.budget = 0.0;  // unlimited: the test is about correctness
  options.retry.idempotent = registry_.idempotency_predicate();
  options.async_client = &chaos_http;
  core::SpiClient client(chaos, server_->endpoint(), options);

  int ok = 0;
  for (int i = 0; i < 60; ++i) {
    std::vector<ServiceCall> calls;
    calls.push_back(core::make_call("EchoService", "Echo",
                                    {{"data", Value("c" + std::to_string(i))}}));
    calls.push_back(core::make_call("TailService", "Get", {}));
    auto result = client.execute_packed_future(std::move(calls)).get();
    if (result.ok()) {
      ASSERT_EQ(result.value().size(), 2u);
      EXPECT_EQ(result.value()[0].value().as_string(),
                "c" + std::to_string(i));
      ++ok;
    }
  }
  // Severs hit ~20% of connections; six idempotent attempts each make
  // residual failure odds negligible.
  EXPECT_EQ(ok, 60);
  EXPECT_GE(chaos.fault_stats().severs, 1u);
  wait_inflight_zero(client);
}

}  // namespace
}  // namespace spi
