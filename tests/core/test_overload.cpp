// Overload protection end to end (DESIGN.md §11): fan-out caps that fault
// excess calls while siblings execute, shed-don't-block application-queue
// handoff, Retry-After as a client backoff floor, and the adaptive
// concurrency limiter shedding under saturation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "benchsupport/workload.hpp"
#include "core/client.hpp"
#include "core/remote_plan.hpp"
#include "core/server.hpp"
#include "http/client.hpp"
#include "net/sim_transport.hpp"
#include "resilience/retry.hpp"
#include "services/echo.hpp"

namespace spi::core {
namespace {

using soap::Value;

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override { services::register_echo_service(registry_); }

  net::SimTransport transport_;
  ServiceRegistry registry_;
};

TEST_F(OverloadTest, FanoutCapFaultsExcessCallsWhileSiblingsExecute) {
  ServerOptions options;
  options.envelope_limits.max_fanout = 4;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport_, server.endpoint());

  auto calls = bench::make_echo_calls(8, 10, /*seed=*/1);
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 8u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(outcomes[i].ok()) << "sibling " << i << " under the cap: "
                                  << outcomes[i].error().to_string();
  }
  for (size_t i = 4; i < 8; ++i) {
    ASSERT_FALSE(outcomes[i].ok()) << "call " << i << " is over the cap";
    EXPECT_EQ(outcomes[i].error().code(), ErrorCode::kFault);
    EXPECT_EQ(resilience::fault_cause(outcomes[i].error()),
              ErrorCode::kCapacityExceeded);
    EXPECT_NE(
        outcomes[i].error().message().find("envelope limit exceeded: fan-out"),
        std::string::npos)
        << outcomes[i].error().message();
    // Shed-before-execute: safe for the client to replay.
    EXPECT_EQ(resilience::classify(outcomes[i].error()),
              resilience::FaultClass::kRetryableNotExecuted);
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.dispatcher.limit_rejected_calls, 4u);
  EXPECT_EQ(stats.dispatcher.calls_dispatched, 4u);
}

TEST_F(OverloadTest, TenThousandCallPackBoundedByDefaultCap) {
  // The hostile shape the cap exists for: M=10k against the default
  // fan-out bound. The first max_fanout calls run, the rest fault, and
  // the server stays up.
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport_, server.endpoint());
  const size_t cap = soap::EnvelopeLimits{}.max_fanout;

  auto calls = bench::make_echo_calls(10'000, 8, /*seed=*/2);
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 10'000u);
  size_t ok = 0, rejected = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.ok()) {
      ++ok;
    } else if (outcome.error().message().find(
                   "envelope limit exceeded: fan-out") != std::string::npos) {
      ++rejected;
    }
  }
  EXPECT_EQ(ok, cap);
  EXPECT_EQ(rejected, 10'000u - cap);
  EXPECT_EQ(server.stats().dispatcher.limit_rejected_calls, 10'000u - cap);

  // The server still serves normal traffic afterwards.
  auto after = client.call("EchoService", "Echo", {{"data", Value("ok")}});
  EXPECT_TRUE(after.ok());
}

TEST_F(OverloadTest, PlanOverFanoutCapRejectedWholesale) {
  // A plan's later steps may reference earlier results, so truncating a
  // plan would execute a prefix whose outputs feed rejected steps; the
  // dispatcher rejects the whole plan instead.
  ServerOptions options;
  options.envelope_limits.max_fanout = 2;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport_, server.endpoint());

  RemotePlan plan;
  plan.step("EchoService", "Echo", {PlanArg::value("data", Value("a"))})
      .step("EchoService", "Echo", {PlanArg::value("data", Value("b"))})
      .step("EchoService", "Echo", {PlanArg::value("data", Value("c"))});
  auto outcomes = client.execute_plan(plan);
  ASSERT_TRUE(outcomes.ok()) << outcomes.error().to_string();
  ASSERT_EQ(outcomes.value().size(), 3u);
  for (const auto& outcome : outcomes.value()) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(resilience::fault_cause(outcome.error()),
              ErrorCode::kCapacityExceeded);
    EXPECT_NE(outcome.error().message().find("plan steps"),
              std::string::npos)
        << outcome.error().message();
  }
  EXPECT_EQ(server.stats().dispatcher.calls_dispatched, 0u);
}

TEST_F(OverloadTest, FullApplicationQueueShedsInsteadOfBlocking) {
  ServerOptions options;
  options.staged = true;
  options.application_threads = 1;
  options.application_queue_capacity = 1;
  options.protocol_threads = 16;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  // 8 concurrent slow calls against 1 worker + 1 queue slot: at most two
  // can be in the application stage; the rest must shed fast with a
  // retryable CapacityExceeded fault, not block their protocol threads.
  std::atomic<int> ok_count{0}, shed_count{0}, other{0};
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&] {
        SpiClient client(transport_, server.endpoint());
        auto outcome = client.call("EchoService", "Delay",
                                   {{"milliseconds", Value(50)}});
        if (outcome.ok()) {
          ++ok_count;
        } else if (outcome.error().message().find(
                       "application stage queue is full") !=
                   std::string::npos) {
          EXPECT_EQ(resilience::fault_cause(outcome.error()),
                    ErrorCode::kCapacityExceeded);
          EXPECT_EQ(resilience::classify(outcome.error()),
                    resilience::FaultClass::kRetryableNotExecuted);
          ++shed_count;
        } else {
          ADD_FAILURE() << outcome.error().to_string();
          ++other;
        }
      });
    }
  }
  EXPECT_EQ(ok_count.load() + shed_count.load() + other.load(), 8);
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(shed_count.load(), 1);
  EXPECT_EQ(server.stats().dispatcher.queue_full_shed,
            static_cast<std::uint64_t>(shed_count.load()));

  // After the burst the queue drains and the server accepts work again.
  SpiClient client(transport_, server.endpoint());
  EXPECT_TRUE(
      client.call("EchoService", "Echo", {{"data", Value("ok")}}).ok());
}

TEST_F(OverloadTest, AdmissionShedCarries503AndRetryAfter) {
  ServerOptions options;
  options.max_concurrent_messages = 1;
  options.retry_after_hint = std::chrono::milliseconds(50);
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  std::jthread blocker([&] {
    SpiClient client(transport_, server.endpoint());
    (void)client.call("EchoService", "Delay", {{"milliseconds", Value(300)}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Probe on the raw HTTP client so the shed response's status line and
  // headers are visible.
  Assembler assembler;
  std::vector<ServiceCall> calls = {
      make_call("EchoService", "Echo", {{"data", Value("probe")}})};
  std::string envelope = assembler.assemble_request(calls, PackMode::kSingle);
  http::HttpClient http(transport_, server.endpoint());
  auto response = http.post("/spi", std::move(envelope), "text/xml");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 503);
  EXPECT_NE(response.value().body.find("CapacityExceeded"),
            std::string::npos);
  auto hint = response.value().headers.get("Retry-After");
  ASSERT_TRUE(hint.has_value()) << "503 shed must carry Retry-After";
  auto floor = resilience::parse_retry_after(*hint);
  ASSERT_TRUE(floor.has_value()) << *hint;
  EXPECT_EQ(*floor, std::chrono::milliseconds(50));
  EXPECT_GE(server.stats().admission_rejections, 1u);
}

TEST_F(OverloadTest, RetryAfterActsAsClientBackoffFloor) {
  ServerOptions options;
  options.max_concurrent_messages = 1;
  options.retry_after_hint = std::chrono::milliseconds(250);
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  std::jthread blocker([&] {
    SpiClient client(transport_, server.endpoint());
    (void)client.call("EchoService", "Delay", {{"milliseconds", Value(100)}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // The retrying client's own backoff is ~1ms; only the server's 250ms
  // Retry-After floor can make the replay wait out the 100ms blocker.
  ClientOptions retrying;
  retrying.retry.max_attempts = 2;
  retrying.retry.initial_backoff = std::chrono::milliseconds(1);
  retrying.retry.jitter = 0.0;
  SpiClient client(transport_, server.endpoint(), retrying);
  auto start = std::chrono::steady_clock::now();
  auto outcome = client.call("EchoService", "Echo", {{"data", Value("x")}});
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_GE(elapsed, std::chrono::milliseconds(200))
      << "replay must not fire before the server's Retry-After floor";
}

TEST_F(OverloadTest, AdaptiveLimiterShedsUnderSaturation) {
  ServerOptions options;
  AdaptiveLimiterOptions adaptive;
  adaptive.min_limit = 1;
  adaptive.max_limit = 2;
  adaptive.initial_limit = 1;
  adaptive.window = 1'000'000;  // hold the limit at 1 for the whole test
  options.adaptive_limit = adaptive;
  options.protocol_threads = 16;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  std::atomic<int> ok_count{0}, shed_count{0};
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < 6; ++t) {
      clients.emplace_back([&] {
        SpiClient client(transport_, server.endpoint());
        auto outcome = client.call("EchoService", "Delay",
                                   {{"milliseconds", Value(50)}});
        if (outcome.ok()) {
          ++ok_count;
        } else {
          EXPECT_NE(
              outcome.error().message().find("adaptive concurrency limit"),
              std::string::npos)
              << outcome.error().message();
          EXPECT_EQ(resilience::fault_cause(outcome.error()),
                    ErrorCode::kCapacityExceeded);
          ++shed_count;
        }
      });
    }
  }
  EXPECT_EQ(ok_count.load() + shed_count.load(), 6);
  EXPECT_GE(ok_count.load(), 1);
  EXPECT_GE(shed_count.load(), 1);
  EXPECT_EQ(server.stats().adaptive_shed,
            static_cast<std::uint64_t>(shed_count.load()));
}

}  // namespace
}  // namespace spi::core
