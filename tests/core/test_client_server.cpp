// End-to-end integration: SpiClient <-> SpiServer over both transports,
// covering the three strategies, per-call faults, packing at M=1, the
// Batch future interface, WS-Security, and staged-vs-coupled servers.
#include <gtest/gtest.h>

#include "benchsupport/workload.hpp"
#include "core/client.hpp"
#include "core/params.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "services/echo.hpp"
#include "services/weather.hpp"

namespace spi {
namespace {

using core::CallOutcome;
using core::ServiceCall;
using soap::Value;

class SpiEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    services::register_weather_service(registry_);
    server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"server", 80}, registry_);
    ASSERT_TRUE(server_->start().ok());
    client_ = std::make_unique<core::SpiClient>(transport_,
                                                server_->endpoint());
  }

  net::SimTransport transport_;  // instant link
  core::ServiceRegistry registry_;
  std::unique_ptr<core::SpiServer> server_;
  std::unique_ptr<core::SpiClient> client_;
};

TEST_F(SpiEndToEndTest, SingleCallRoundTrip) {
  CallOutcome outcome =
      client_->call("EchoService", "Echo", {{"data", Value("hello spi")}});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "hello spi");
}

TEST_F(SpiEndToEndTest, SingleCallUnknownServiceFaults) {
  CallOutcome outcome = client_->call("NoSuchService", "Echo", {});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kFault);
  EXPECT_NE(outcome.error().message().find("NoSuchService"),
            std::string::npos);
}

TEST_F(SpiEndToEndTest, SerialStrategyReturnsAllInOrder) {
  auto calls = bench::make_echo_calls(8, 32, /*seed=*/1);
  auto outcomes = client_->call_serial(calls);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
}

TEST_F(SpiEndToEndTest, MultithreadedStrategyReturnsAllInOrder) {
  auto calls = bench::make_echo_calls(16, 64, /*seed=*/2);
  auto outcomes = client_->call_multithreaded(calls);
  ASSERT_EQ(outcomes.size(), 16u);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
}

TEST_F(SpiEndToEndTest, PackedStrategyReturnsAllInOrder) {
  auto calls = bench::make_echo_calls(16, 64, /*seed=*/3);
  auto outcomes = client_->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 16u);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);

  // The whole batch crossed in ONE SOAP message each way.
  auto stats = client_->stats();
  EXPECT_EQ(stats.assembler.envelopes, 1u);
  EXPECT_EQ(stats.assembler.packed_envelopes, 1u);
  EXPECT_EQ(stats.assembler.calls, 16u);
}

TEST_F(SpiEndToEndTest, PackedSingleCallWorks) {
  auto calls = bench::make_echo_calls(1, 10, /*seed=*/4);
  auto outcomes = client_->call_packed(calls, core::PackMode::kPacked);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
}

TEST_F(SpiEndToEndTest, PackedFaultIsPerCallNotGlobal) {
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("EchoService", "Echo",
                                  {{"data", Value("ok-1")}}));
  calls.push_back(core::make_call("EchoService", "NoSuchOperation", {}));
  calls.push_back(core::make_call("EchoService", "Echo",
                                  {{"data", Value("ok-3")}}));

  auto outcomes = client_->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_EQ(outcomes[0].value().as_string(), "ok-1");
  ASSERT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].error().code(), ErrorCode::kFault);
  EXPECT_TRUE(outcomes[2].ok());
  EXPECT_EQ(outcomes[2].value().as_string(), "ok-3");
}

TEST_F(SpiEndToEndTest, PackedMixedServicesInOneMessage) {
  // The paper's Figure 4 scenario: two weather queries in one message —
  // plus an echo, proving packing is not per-service.
  std::vector<ServiceCall> calls;
  calls.push_back(core::make_call("WeatherService", "GetWeather",
                                  {{"city", Value("Beijing")}}));
  calls.push_back(core::make_call("WeatherService", "GetWeather",
                                  {{"city", Value("Shanghai")}}));
  calls.push_back(
      core::make_call("EchoService", "Echo", {{"data", Value("x")}}));

  auto outcomes = client_->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 3u);
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error().to_string();
  EXPECT_EQ(outcomes[0].value().field("city")->as_string(), "Beijing");
  ASSERT_TRUE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].value().field("city")->as_string(), "Shanghai");
  ASSERT_TRUE(outcomes[2].ok());
}

TEST_F(SpiEndToEndTest, BatchFuturesCompleteIndividually) {
  auto batch = client_->create_batch();
  auto beijing = batch.add("WeatherService", "GetWeather",
                           {{"city", Value("Beijing")}});
  auto bad = batch.add("WeatherService", "GetWeather",
                       {{"city", Value("Atlantis")}});
  auto shanghai = batch.add("WeatherService", "GetWeather",
                            {{"city", Value("Shanghai")}});
  EXPECT_EQ(batch.size(), 3u);
  batch.execute();

  CallOutcome b = beijing.get();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().field("condition")->as_string(), "Sunny");

  CallOutcome a = bad.get();
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.error().code(), ErrorCode::kFault);

  CallOutcome s = shanghai.get();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().field("city")->as_string(), "Shanghai");
}

TEST_F(SpiEndToEndTest, BatchAddAfterExecuteThrows) {
  auto batch = client_->create_batch();
  batch.add("EchoService", "Echo", {{"data", Value("x")}});
  batch.execute();
  EXPECT_THROW(batch.add("EchoService", "Echo", {}), SpiError);
  EXPECT_THROW(batch.execute(), SpiError);
}

TEST_F(SpiEndToEndTest, EmptyBatchExecuteIsNoOp) {
  auto batch = client_->create_batch();
  EXPECT_NO_THROW(batch.execute());
}

TEST_F(SpiEndToEndTest, KeepAliveSerialCallsReuseOneConnection) {
  transport_.reset_stats();
  core::ClientOptions options;
  options.keep_alive = true;
  core::SpiClient client(transport_, server_->endpoint(), options);
  auto calls = bench::make_echo_calls(6, 16, /*seed=*/21);
  EXPECT_EQ(bench::count_echo_errors(calls, client.call_serial(calls)), 0u);
  EXPECT_EQ(transport_.stats().connections_opened, 1u);

  // Default (paper-faithful) client: one connection per message.
  transport_.reset_stats();
  core::SpiClient fresh(transport_, server_->endpoint());
  EXPECT_EQ(bench::count_echo_errors(calls, fresh.call_serial(calls)), 0u);
  EXPECT_EQ(transport_.stats().connections_opened, 6u);
}

TEST_F(SpiEndToEndTest, ConnectToUnboundEndpointFails) {
  core::SpiClient stray(transport_, net::Endpoint{"nowhere", 9});
  CallOutcome outcome = stray.call("EchoService", "Echo", {});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kConnectionFailed);
}

TEST_F(SpiEndToEndTest, LargePayloadRoundTrips) {
  auto calls = bench::make_echo_calls(4, 100'000, /*seed=*/7);
  auto outcomes = client_->call_packed(calls);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
}

TEST_F(SpiEndToEndTest, ServerStatsCountPackedTraffic) {
  auto calls = bench::make_echo_calls(5, 16, /*seed=*/8);
  (void)client_->call_packed(calls);
  (void)client_->call("EchoService", "Echo", {{"data", Value("x")}});

  auto stats = server_->stats();
  EXPECT_EQ(stats.dispatcher.envelopes, 2u);
  EXPECT_EQ(stats.dispatcher.packed_envelopes, 1u);
  EXPECT_EQ(stats.dispatcher.calls_dispatched, 6u);
  EXPECT_EQ(stats.http_requests, 2u);
  // Staged server: every call ran on the application pool.
  EXPECT_EQ(stats.application_tasks, 6u);
}

// --- coupled (Figure 1) server ---------------------------------------------

TEST(SpiCoupledServerTest, CoupledModeServesPackedMessages) {
  net::SimTransport transport;
  core::ServiceRegistry registry;
  services::register_echo_service(registry);
  core::ServerOptions options;
  options.staged = false;  // Figure 1: protocol thread runs the handlers
  core::SpiServer server(transport, net::Endpoint{"server", 80}, registry,
                         options);
  ASSERT_TRUE(server.start().ok());
  core::SpiClient client(transport, server.endpoint());

  auto calls = bench::make_echo_calls(6, 20, /*seed=*/9);
  auto outcomes = client.call_packed(calls);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
  EXPECT_EQ(server.stats().application_tasks, 0u);  // no app pool exists
}

// --- WS-Security ------------------------------------------------------------

class SpiWsseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    core::ServerOptions options;
    options.wsse = soap::WsseCredentials{"grid-user", "s3cret"};
    server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"server", 80}, registry_, options);
    ASSERT_TRUE(server_->start().ok());
  }

  net::SimTransport transport_;
  core::ServiceRegistry registry_;
  std::unique_ptr<core::SpiServer> server_;
};

TEST_F(SpiWsseTest, AuthorizedClientSucceeds) {
  core::ClientOptions options;
  options.wsse = soap::WsseCredentials{"grid-user", "s3cret"};
  core::SpiClient client(transport_, server_->endpoint(), options);

  auto outcome = client.call("EchoService", "Echo", {{"data", Value("hi")}});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "hi");

  // Packed batches carry ONE Security header for all M calls.
  auto calls = bench::make_echo_calls(4, 8, /*seed=*/10);
  auto outcomes = client.call_packed(calls);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
}

TEST_F(SpiWsseTest, MissingHeaderRejected) {
  core::SpiClient bare(transport_, server_->endpoint());
  auto outcome = bare.call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kFault);
}

TEST_F(SpiWsseTest, WrongPasswordRejected) {
  core::ClientOptions options;
  options.wsse = soap::WsseCredentials{"grid-user", "wrong"};
  core::SpiClient client(transport_, server_->endpoint(), options);
  auto outcome = client.call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error().message().find("digest"), std::string::npos);
}

// --- real TCP loopback -------------------------------------------------------

TEST(SpiTcpIntegrationTest, FullStackOverRealSockets) {
  net::TcpTransport transport;
  core::ServiceRegistry registry;
  services::register_echo_service(registry);
  services::register_weather_service(registry);
  core::SpiServer server(transport, net::Endpoint{"127.0.0.1", 0}, registry);
  ASSERT_TRUE(server.start().ok());
  ASSERT_NE(server.endpoint().port, 0);

  core::SpiClient client(transport, server.endpoint());

  auto single = client.call("WeatherService", "GetWeather",
                            {{"city", Value("Seattle")}});
  ASSERT_TRUE(single.ok()) << single.error().to_string();
  EXPECT_EQ(single.value().field("condition")->as_string(), "Drizzle");

  auto calls = bench::make_echo_calls(12, 512, /*seed=*/11);
  EXPECT_EQ(bench::count_echo_errors(calls, client.call_packed(calls)), 0u);
  EXPECT_EQ(bench::count_echo_errors(calls, client.call_serial(calls)), 0u);
  EXPECT_EQ(bench::count_echo_errors(calls, client.call_multithreaded(calls)),
            0u);
  server.stop();
}

}  // namespace
}  // namespace spi
