// End-to-end wire-codec coverage (DESIGN.md §14): negotiated compression
// and binary framing between SpiClient and SpiServer, hostile encoded
// bodies at the server boundary, codec renegotiation across a pooled
// keep-alive connection, and the codec telemetry surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "benchsupport/workload.hpp"
#include "codec/deflate.hpp"
#include "core/assembler.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "http/client.hpp"
#include "net/sim_transport.hpp"
#include "resilience/retry.hpp"
#include "services/echo.hpp"
#include "soap/envelope.hpp"

namespace spi {
namespace {

using core::CallOutcome;
using soap::Value;

class CodecEndToEndTest : public ::testing::Test {
 protected:
  void start_server(core::ServerOptions options = {}) {
    services::register_echo_service(registry_);
    server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"server", 80}, registry_,
        std::move(options));
    ASSERT_TRUE(server_->start().ok());
  }

  std::unique_ptr<core::SpiClient> make_client(
      core::ClientOptions options = {}) {
    return std::make_unique<core::SpiClient>(transport_, server_->endpoint(),
                                             std::move(options));
  }

  /// Raw POST straight at the SPI endpoint, bypassing SpiClient.
  http::Response raw_post(std::string body, const http::Headers& extra) {
    http::HttpClient http(transport_, server_->endpoint(), {});
    auto response = http.post("/spi", std::move(body), "text/xml", &extra);
    EXPECT_TRUE(response.ok()) << response.error().to_string();
    return response.ok() ? std::move(response).value() : http::Response{};
  }

  /// The fault carried in a response body, mapped back to the error model.
  Error fault_error(const http::Response& response) {
    auto envelope = soap::Envelope::parse(response.body);
    EXPECT_TRUE(envelope.ok()) << envelope.error().to_string();
    if (!envelope.ok()) return Error(ErrorCode::kInternal, "no envelope");
    EXPECT_EQ(envelope.value().body_entries.size(), 1u);
    auto fault =
        soap::Fault::from_element(*envelope.value().body_entries.front());
    EXPECT_TRUE(fault.has_value());
    return fault ? fault->to_error()
                 : Error(ErrorCode::kInternal, "no fault");
  }

  std::string sample_envelope() {
    core::Assembler assembler(nullptr, {});
    auto call = core::make_call("EchoService", "Echo",
                                {{"data", Value("codec e2e payload")}});
    return assembler.assemble_request({&call, 1}, core::PackMode::kSingle);
  }

  net::SimTransport transport_;  // instant link
  core::ServiceRegistry registry_;
  std::unique_ptr<core::SpiServer> server_;
};

TEST_F(CodecEndToEndTest, DeflateBothDirections) {
  start_server();
  core::ClientOptions options;
  options.request_codec = "deflate";
  options.accept_codecs = {"deflate"};
  auto client = make_client(std::move(options));
  auto calls = bench::make_echo_calls_text(8, 512, /*seed=*/11);
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);

  const std::string metrics = server_->metrics().expose();
  EXPECT_NE(metrics.find("spi_codec_decoded_bytes_total{codec=\"deflate\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("spi_codec_encoded_bytes_total{codec=\"deflate\"}"),
            std::string::npos);
  EXPECT_NE(
      metrics.find("spi_codec_negotiations_total{codec=\"deflate\"} 1"),
      std::string::npos);
}

TEST_F(CodecEndToEndTest, BxmlBothDirections) {
  start_server();
  core::ClientOptions options;
  options.request_codec = "bxml";
  options.accept_codecs = {"bxml"};
  auto client = make_client(std::move(options));
  auto calls = bench::make_echo_calls_text(4, 256, /*seed=*/12);
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(bench::count_echo_errors(calls, outcomes), 0u);
}

TEST_F(CodecEndToEndTest, MixedRequestAndResponseCodecs) {
  start_server();
  core::ClientOptions options;
  options.request_codec = "bxml";       // binary out
  options.accept_codecs = {"deflate"};  // compressed back
  auto client = make_client(std::move(options));
  CallOutcome outcome =
      client->call("EchoService", "Echo", {{"data", Value("mixed codecs")}});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "mixed codecs");
}

TEST_F(CodecEndToEndTest, IdentityClientStillWorksAgainstCodecServer) {
  start_server();
  auto client = make_client();
  CallOutcome outcome =
      client->call("EchoService", "Echo", {{"data", Value("plain text")}});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "plain text");
}

TEST_F(CodecEndToEndTest, CorruptDeflateBodyIs400Retryable) {
  start_server();
  codec::DeflateCodec codec;
  auto encoded = codec.encode(sample_envelope());
  ASSERT_TRUE(encoded.ok());
  std::string corrupt = encoded.value();
  corrupt[corrupt.size() / 2] ^= 0x42;
  corrupt[corrupt.size() / 2 + 1] ^= 0x24;
  http::Headers headers;
  headers.set("Content-Encoding", "deflate");
  http::Response response = raw_post(std::move(corrupt), headers);
  EXPECT_EQ(response.status, 400);
  Error error = fault_error(response);
  // The fault names kCodecError, which classifies as retryable-not-executed:
  // the server guarantees nothing ran.
  EXPECT_EQ(resilience::fault_cause(error), ErrorCode::kCodecError);
  EXPECT_EQ(resilience::classify(error),
            resilience::FaultClass::kRetryableNotExecuted);
}

TEST_F(CodecEndToEndTest, CorruptBxmlBodyIs400Retryable) {
  start_server();
  http::Headers headers;
  headers.set("Content-Encoding", "bxml");
  http::Response response = raw_post(
      std::string("BX1\0garbage-after-magic", 23), headers);
  EXPECT_EQ(response.status, 400);
  Error error = fault_error(response);
  EXPECT_EQ(resilience::fault_cause(error), ErrorCode::kCodecError);
  EXPECT_EQ(resilience::classify(error),
            resilience::FaultClass::kRetryableNotExecuted);
}

TEST_F(CodecEndToEndTest, UnknownContentEncodingIs415) {
  start_server();
  http::Headers headers;
  headers.set("Content-Encoding", "gzip");
  http::Response response = raw_post(sample_envelope(), headers);
  EXPECT_EQ(response.status, 415);
}

TEST_F(CodecEndToEndTest, DecompressionBombShedsAtBudget) {
  core::ServerOptions options;
  options.max_decoded_body_bytes = 4096;
  start_server(std::move(options));
  codec::DeflateCodec codec;
  // ~1 MB of envelope-shaped text compresses to a few KB; the decoded-size
  // limit sheds it before the plaintext materializes.
  std::string huge = sample_envelope();
  huge.insert(huge.find("</SOAP-ENV:Body>"), std::string(1u << 20, ' '));
  auto encoded = codec.encode(huge);
  ASSERT_TRUE(encoded.ok());
  ASSERT_LT(encoded.value().size(), 64u * 1024);
  http::Headers headers;
  headers.set("Content-Encoding", "deflate");
  http::Response response = raw_post(std::move(encoded).value(), headers);
  EXPECT_EQ(response.status, 400);
  const std::string metrics = server_->metrics().expose();
  EXPECT_NE(
      metrics.find("spi_limit_rejections_total{limit=\"decoded-bytes\"} 1"),
      std::string::npos)
      << metrics;
  EXPECT_EQ(server_->stats().limit_rejections, 1u);
}

TEST_F(CodecEndToEndTest, KeepAliveConnectionRenegotiatesPerRequest) {
  start_server();
  // ONE pooled connection, three messages, three different codings: the
  // stateless per-request negotiation must never leak a codec choice into
  // the next message on the same socket.
  http::ClientOptions http_options;
  http_options.keep_alive = true;
  http::HttpClient http(transport_, server_->endpoint(), http_options);
  codec::DeflateCodec deflate;

  {  // identity request, identity response
    auto response = http.post("/spi", sample_envelope());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
    EXPECT_FALSE(
        response.value().headers.get("Content-Encoding").has_value());
  }
  {  // deflate request, deflate response
    auto encoded = deflate.encode(sample_envelope());
    ASSERT_TRUE(encoded.ok());
    http::Headers headers;
    headers.set("Content-Encoding", "deflate");
    headers.set("Accept-Encoding", "deflate");
    auto response = http.send([&] {
      http::Request request;
      request.method = "POST";
      request.target = "/spi";
      request.body = std::move(encoded).value();
      request.headers = headers;
      return request;
    }());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
    auto coding = response.value().headers.get("Content-Encoding");
    ASSERT_TRUE(coding.has_value());
    EXPECT_EQ(*coding, "deflate");
    auto plain = deflate.decode(response.value().body, 1u << 20);
    EXPECT_TRUE(plain.ok());
  }
  {  // back to identity on the SAME connection
    auto response = http.post("/spi", sample_envelope());
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 200);
    EXPECT_FALSE(
        response.value().headers.get("Content-Encoding").has_value());
  }
  // All three messages rode one connection.
  EXPECT_EQ(transport_.stats().connections_opened, 1u);
}

TEST_F(CodecEndToEndTest, ResponseCacheServesRepeatedAnswers) {
  core::ServerOptions options;
  options.response_cache_capacity = 8;
  start_server(std::move(options));
  core::ClientOptions client_options;
  client_options.accept_codecs = {"deflate"};
  // Per-message trace ids are echoed into responses, which would make every
  // plaintext unique; the cache only serves byte-identical answers.
  client_options.trace_propagation = false;
  auto client = make_client(std::move(client_options));
  for (int i = 0; i < 3; ++i) {
    CallOutcome outcome = client->call("EchoService", "Echo",
                                       {{"data", Value("cacheable")}});
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }
  const std::string metrics = server_->metrics().expose();
  EXPECT_NE(metrics.find("spi_codec_response_cache_hits_total 2"),
            std::string::npos)
      << metrics;
}

TEST_F(CodecEndToEndTest, FaultResponsesStayIdentity) {
  start_server();
  http::Headers headers;
  headers.set("Accept-Encoding", "deflate");
  http::Response response = raw_post("<not-an-envelope/>", headers);
  EXPECT_EQ(response.status, 400);
  // The fault must be readable text XML even though the client advertised
  // deflate — a client that cannot decode its error is stuck.
  EXPECT_FALSE(response.headers.get("Content-Encoding").has_value());
  EXPECT_NE(response.body.find("SOAP-ENV:Fault"), std::string::npos);
}

TEST_F(CodecEndToEndTest, UnknownAcceptEncodingFallsBackToIdentity) {
  start_server();
  http::Headers headers;
  headers.set("Accept-Encoding", "gzip, br");
  http::Response response = raw_post(sample_envelope(), headers);
  EXPECT_EQ(response.status, 200);
  EXPECT_FALSE(response.headers.get("Content-Encoding").has_value());
  const std::string metrics = server_->metrics().expose();
  EXPECT_NE(metrics.find("spi_codec_fallbacks_total 1"), std::string::npos);
}

}  // namespace
}  // namespace spi
