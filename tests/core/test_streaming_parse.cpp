// The streaming request parser: equivalence with the DOM reference path
// (property-tested over randomized batches), header skipping, error
// handling, and the end-to-end server flag.
#include <gtest/gtest.h>

#include "benchsupport/workload.hpp"
#include "common/random.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"
#include "soap/streaming.hpp"

namespace spi::core::wire {
namespace {

using soap::Value;

Result<ParsedRequest> dom_parse(std::string_view envelope_xml) {
  auto envelope = soap::Envelope::parse(envelope_xml);
  if (!envelope.ok()) return envelope.error();
  return parse_request(envelope.value());
}

void expect_equivalent(std::string_view envelope_xml) {
  auto via_dom = dom_parse(envelope_xml);
  auto via_stream = parse_request_streaming(envelope_xml);
  ASSERT_EQ(via_dom.ok(), via_stream.ok())
      << (via_dom.ok() ? via_stream.error().to_string()
                       : via_dom.error().to_string());
  if (!via_dom.ok()) return;
  ASSERT_EQ(via_dom.value().packed, via_stream.value().packed);
  ASSERT_EQ(via_dom.value().calls.size(), via_stream.value().calls.size());
  for (size_t i = 0; i < via_dom.value().calls.size(); ++i) {
    EXPECT_EQ(via_dom.value().calls[i].id, via_stream.value().calls[i].id);
    EXPECT_EQ(via_dom.value().calls[i].call, via_stream.value().calls[i].call)
        << "call " << i;
  }
}

TEST(StreamingParseTest, SingleCallMatchesDom) {
  ServiceCall call = make_call(
      "WeatherService", "GetWeather",
      {{"city", Value("Beijing")}, {"units", Value("metric")}});
  expect_equivalent(soap::build_envelope(serialize_single_request(call)));
}

TEST(StreamingParseTest, PackedBatchMatchesDom) {
  auto calls = bench::make_echo_calls(8, 100, /*seed=*/1);
  expect_equivalent(soap::build_envelope(serialize_packed_request(calls)));
}

TEST(StreamingParseTest, TypedValuesMatchDom) {
  std::vector<ServiceCall> calls = {make_call(
      "S", "Op",
      {{"s", Value("text with <markup> & entities")},
       {"n", Value(-42)},
       {"d", Value(2.5)},
       {"b", Value(true)},
       {"nil", Value()},
       {"arr", Value(soap::Array{Value(1), Value("two")})},
       {"nested",
        Value(soap::Struct{{"inner", Value(soap::Struct{{"x", Value(9)}})}})}})};
  expect_equivalent(soap::build_envelope(serialize_packed_request(calls)));
}

TEST(StreamingParseTest, SkipsHeaderBlocks) {
  soap::WsseTokenFactory factory({"u", "p"}, 1);
  std::vector<std::string> headers;
  headers.push_back(factory.make_header_block("2006-09-25T12:00:00Z"));
  headers.push_back("<custom:Block xmlns:custom=\"urn:x\"><deep><er/></deep></custom:Block>");
  ServiceCall call = make_call("S", "Op", {{"x", Value("y")}});
  std::string envelope =
      soap::build_envelope(serialize_single_request(call), headers);

  auto parsed = parse_request_streaming(envelope);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().calls[0].call, call);
}

TEST(StreamingParseTest, PlanFallsBackWithInvalidArgument) {
  RemotePlan plan;
  plan.step("S", "Op", {PlanArg::value("x", Value(1))});
  auto parsed = parse_request_streaming(
      soap::build_envelope(serialize_plan_request(plan)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code(), ErrorCode::kInvalidArgument);
}

TEST(StreamingParseTest, RejectsMalformedShapes) {
  EXPECT_FALSE(parse_request_streaming("").ok());
  EXPECT_FALSE(parse_request_streaming("<NotEnvelope/>").ok());
  EXPECT_FALSE(
      parse_request_streaming("<Envelope><Header/></Envelope>").ok());
  EXPECT_FALSE(
      parse_request_streaming("<Envelope><Body/></Envelope>").ok());
  EXPECT_FALSE(parse_request_streaming(soap::build_envelope(
                   "<spi:Parallel_Method/>"))
                   .ok());
  EXPECT_FALSE(parse_request_streaming(soap::build_envelope(
                   "<spi:Op><x>1</x></spi:Op>"))  // no spi:service
                   .ok());
  EXPECT_FALSE(parse_request_streaming(
                   "<Envelope><Body><spi:Parallel_Method><wrong/>"
                   "</spi:Parallel_Method></Body></Envelope>")
                   .ok());
}

TEST(StreamingParseTest, PropertyRandomBatchesMatchDom) {
  SplitMix64 rng(0x57E4);
  for (int round = 0; round < 40; ++round) {
    std::vector<ServiceCall> calls;
    size_t m = 1 + rng.next_below(12);
    for (size_t i = 0; i < m; ++i) {
      soap::Struct params;
      size_t n = rng.next_below(4);
      for (size_t p = 0; p < n; ++p) {
        switch (rng.next_below(4)) {
          case 0:
            params.emplace_back("p" + std::to_string(p),
                                Value(rng.ascii_string(rng.next_below(40))));
            break;
          case 1:
            params.emplace_back(
                "p" + std::to_string(p),
                Value(static_cast<std::int64_t>(rng.next())));
            break;
          case 2:
            params.emplace_back(
                "p" + std::to_string(p),
                Value(soap::Array{Value(1), Value("x"), Value()}));
            break;
          default:
            params.emplace_back(
                "p" + std::to_string(p),
                Value(soap::Struct{{"k", Value(rng.ascii_string(8))}}));
        }
      }
      calls.push_back(make_call("Svc" + std::to_string(rng.next_below(3)),
                                "Op" + std::to_string(rng.next_below(3)),
                                std::move(params)));
    }
    expect_equivalent(
        soap::build_envelope(serialize_packed_request(calls)));
  }
}

TEST(StreamingParseTest, EndToEndServerFlag) {
  net::SimTransport transport;
  ServiceRegistry registry;
  services::register_echo_service(registry);
  ServerOptions options;
  options.streaming_parse = true;
  SpiServer server(transport, net::Endpoint{"server", 80}, registry,
                   options);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport, server.endpoint());

  auto calls = bench::make_echo_calls(6, 200, /*seed=*/3);
  EXPECT_EQ(bench::count_echo_errors(calls, client.call_packed(calls)), 0u);
  auto single =
      client.call("EchoService", "Echo", {{"data", Value("streamed")}});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value().as_string(), "streamed");

  // Plans still work (DOM fallback).
  RemotePlan plan;
  plan.step("EchoService", "Echo", {PlanArg::value("data", Value("p"))});
  auto outcomes = client.execute_plan(plan);
  ASSERT_TRUE(outcomes.ok()) << outcomes.error().to_string();
  EXPECT_EQ(outcomes.value()[0].value().as_string(), "p");
  server.stop();
}

// skip_subtree unit coverage.
TEST(SkipSubtreeTest, SkipsNestedAndSelfClosing) {
  std::string_view doc =
      "<r><skip a=\"1\"><x/><y><z/></y>text</skip><next/></r>";
  xml::PullParser parser(doc);
  (void)parser.next();  // <r>
  auto skip_start = parser.next();
  ASSERT_TRUE(skip_start.ok());
  ASSERT_EQ(skip_start.value().name, "skip");
  ASSERT_TRUE(soap::skip_subtree(parser, skip_start.value()).ok());
  auto next = parser.next();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value().name, "next");
}

TEST(SkipSubtreeTest, ErrorsOnTruncation) {
  // Malformed: truncated inside the subtree.
  xml::PullParser parser("<r><skip><x>");
  (void)parser.next();
  auto skip_start = parser.next();
  ASSERT_TRUE(skip_start.ok());
  EXPECT_FALSE(soap::skip_subtree(parser, skip_start.value()).ok());
}

}  // namespace
}  // namespace spi::core::wire
