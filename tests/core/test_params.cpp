#include <gtest/gtest.h>

#include "core/params.hpp"

namespace spi::core {
namespace {

using soap::Value;

soap::Struct sample() {
  return soap::Struct{
      {"name", Value("Beijing")},
      {"count", Value(42)},
      {"ratio", Value(2.5)},
      {"flag", Value(true)},
      {"dup", Value("first")},
      {"dup", Value("second")},
  };
}

TEST(FindParamTest, FindsFirstMatch) {
  auto params = sample();
  ASSERT_NE(find_param(params, "name"), nullptr);
  EXPECT_EQ(find_param(params, "dup")->as_string(), "first");
  EXPECT_EQ(find_param(params, "missing"), nullptr);
  soap::Struct empty;
  EXPECT_EQ(find_param(empty, "x"), nullptr);
}

TEST(RequireStringTest, ReturnsValueOrDescriptiveError) {
  auto params = sample();
  EXPECT_EQ(require_string(params, "name").value(), "Beijing");

  auto missing = require_string(params, "ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(missing.error().message().find("ghost"), std::string::npos);

  auto wrong_type = require_string(params, "count");
  ASSERT_FALSE(wrong_type.ok());
  EXPECT_NE(wrong_type.error().message().find("must be a string"),
            std::string::npos);
  EXPECT_NE(wrong_type.error().message().find("int"), std::string::npos);
}

TEST(RequireIntTest, StrictAboutType) {
  auto params = sample();
  EXPECT_EQ(require_int(params, "count").value(), 42);
  EXPECT_FALSE(require_int(params, "name").ok());
  EXPECT_FALSE(require_int(params, "ratio").ok());  // no silent narrowing
  EXPECT_FALSE(require_int(params, "ghost").ok());
}

TEST(RequireDoubleTest, WidensIntButNothingElse) {
  auto params = sample();
  EXPECT_DOUBLE_EQ(require_double(params, "ratio").value(), 2.5);
  EXPECT_DOUBLE_EQ(require_double(params, "count").value(), 42.0);  // widened
  EXPECT_FALSE(require_double(params, "name").ok());
  EXPECT_FALSE(require_double(params, "flag").ok());
}

TEST(RequireBoolTest, StrictAboutType) {
  auto params = sample();
  EXPECT_TRUE(require_bool(params, "flag").value());
  EXPECT_FALSE(require_bool(params, "count").ok());
  EXPECT_FALSE(require_bool(params, "ghost").ok());
}

}  // namespace
}  // namespace spi::core
