// Assembler + Dispatcher in isolation (no HTTP/transport): pack/unpack
// round trips, fan-out execution semantics, response routing validation,
// and the pack-cost hook.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/assembler.hpp"
#include "core/dispatcher.hpp"
#include "core/params.hpp"

namespace spi::core {
namespace {

using soap::Value;

std::vector<ServiceCall> echo_calls(size_t n) {
  std::vector<ServiceCall> calls;
  for (size_t i = 0; i < n; ++i) {
    calls.push_back(make_call("EchoService", "Echo",
                              {{"data", Value("payload-" + std::to_string(i))}}));
  }
  return calls;
}

void register_echo(ServiceRegistry& registry) {
  (void)registry.register_operation(
      "EchoService", "Echo",
      [](const soap::Struct& params) -> Result<Value> {
        const Value* data = find_param(params, "data");
        if (!data) return Error(ErrorCode::kInvalidArgument, "no data");
        return *data;
      });
}

TEST(AssemblerTest, AutoModePicksFramingBySize) {
  Assembler assembler;
  auto one = echo_calls(1);
  EXPECT_EQ(assembler.assemble_request(one, PackMode::kAuto)
                .find("Parallel_Method"),
            std::string::npos);
  auto three = echo_calls(3);
  EXPECT_NE(assembler.assemble_request(three, PackMode::kAuto)
                .find("Parallel_Method"),
            std::string::npos);
}

TEST(AssemblerTest, PackedModeForcesParallelMethodAtM1) {
  Assembler assembler;
  auto one = echo_calls(1);
  EXPECT_NE(assembler.assemble_request(one, PackMode::kPacked)
                .find("Parallel_Method"),
            std::string::npos);
}

TEST(AssemblerTest, InvalidBatchesThrow) {
  Assembler assembler;
  std::vector<ServiceCall> empty;
  EXPECT_THROW(assembler.assemble_request(empty, PackMode::kAuto), SpiError);
  auto two = echo_calls(2);
  EXPECT_THROW(assembler.assemble_request(two, PackMode::kSingle), SpiError);
  std::vector<IndexedOutcome> none;
  EXPECT_THROW(assembler.assemble_response(none, ServiceCall{}, true),
               SpiError);
}

TEST(AssemblerTest, StatsTrackEnvelopesAndCalls) {
  Assembler assembler;
  auto calls = echo_calls(4);
  (void)assembler.assemble_request(calls, PackMode::kPacked);
  auto one = echo_calls(1);
  (void)assembler.assemble_request(one, PackMode::kSingle);
  auto stats = assembler.stats();
  EXPECT_EQ(stats.envelopes, 2u);
  EXPECT_EQ(stats.packed_envelopes, 1u);
  EXPECT_EQ(stats.calls, 5u);
}

TEST(AssemblerTest, WsseFactoryAddsSecurityHeader) {
  soap::WsseTokenFactory factory({"u", "p"}, 1);
  Assembler assembler(&factory);
  auto calls = echo_calls(2);
  std::string envelope = assembler.assemble_request(calls, PackMode::kPacked);
  EXPECT_NE(envelope.find("wsse:Security"), std::string::npos);
  EXPECT_NE(envelope.find("SOAP-ENV:Header"), std::string::npos);
}

TEST(PackCostTest, ChargeAdvancesInjectedClock) {
  ManualClock clock;
  PackCostModel model;
  model.ns_per_byte = 10.0;
  model.us_per_call = 2.0;
  model.clock = &clock;
  ASSERT_TRUE(model.enabled());
  model.charge(1000, 5);  // 10us + 10us
  EXPECT_EQ(clock.now().time_since_epoch(),
            Duration(std::chrono::microseconds(20)));
}

TEST(PackCostTest, DisabledModelChargesNothing) {
  ManualClock clock;
  PackCostModel model;
  model.clock = &clock;
  EXPECT_FALSE(model.enabled());
  model.charge(1'000'000'000, 1'000'000);
  EXPECT_EQ(clock.now().time_since_epoch(), Duration::zero());
}

TEST(AssemblerTest, PackCostChargedOnlyForPackedEnvelopes) {
  ManualClock clock;
  PackCostModel model;
  model.us_per_call = 100.0;
  model.clock = &clock;
  Assembler assembler(nullptr, model);

  auto one = echo_calls(1);
  (void)assembler.assemble_request(one, PackMode::kSingle);
  EXPECT_EQ(clock.now().time_since_epoch(), Duration::zero());

  auto four = echo_calls(4);
  (void)assembler.assemble_request(four, PackMode::kPacked);
  EXPECT_GE(clock.now().time_since_epoch(),
            Duration(std::chrono::microseconds(400)));
}

// --- dispatcher -----------------------------------------------------------------

TEST(DispatcherTest, ParseRequestRoundTripsAssemblerOutput) {
  Assembler assembler;
  Dispatcher dispatcher;
  auto calls = echo_calls(3);
  auto parsed = dispatcher.parse_request(
      assembler.assemble_request(calls, PackMode::kPacked));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().packed);
  EXPECT_EQ(parsed.value().calls.size(), 3u);
  EXPECT_EQ(dispatcher.stats().packed_envelopes, 1u);
}

TEST(DispatcherTest, ParseRequestRejectsGarbage) {
  Dispatcher dispatcher;
  EXPECT_FALSE(dispatcher.parse_request("not xml at all").ok());
  EXPECT_FALSE(dispatcher.parse_request("<NotEnvelope/>").ok());
  EXPECT_EQ(dispatcher.stats().envelopes, 0u);
}

TEST(DispatcherTest, ExecuteInlineWithoutPool) {
  Dispatcher dispatcher;
  ServiceRegistry registry;
  register_echo(registry);
  Assembler assembler;
  auto calls = echo_calls(4);
  auto parsed = dispatcher.parse_request(
      assembler.assemble_request(calls, PackMode::kPacked));
  ASSERT_TRUE(parsed.ok());

  auto outcomes = dispatcher.execute(parsed.value(), registry, nullptr);
  ASSERT_EQ(outcomes.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(outcomes[i].id, i);
    ASSERT_TRUE(outcomes[i].outcome.ok());
    EXPECT_EQ(outcomes[i].outcome.value().as_string(),
              "payload-" + std::to_string(i));
  }
  EXPECT_EQ(dispatcher.stats().calls_dispatched, 4u);
}

TEST(DispatcherTest, ExecuteFansOutToPool) {
  Dispatcher dispatcher;
  ServiceRegistry registry;
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  (void)registry.register_operation(
      "S", "Track", [&](const soap::Struct&) -> Result<Value> {
        int now = ++concurrent;
        int seen = max_concurrent.load();
        while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        --concurrent;
        return Value(true);
      });

  wire::ParsedRequest request;
  request.packed = true;
  for (std::uint32_t i = 0; i < 8; ++i) {
    request.calls.push_back({i, make_call("S", "Track")});
  }
  ThreadPool pool(8, "app");
  auto outcomes = dispatcher.execute(request, registry, &pool);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_GE(max_concurrent.load(), 4);  // genuinely parallel
}

TEST(DispatcherTest, ExecuteCountsFaults) {
  Dispatcher dispatcher;
  ServiceRegistry registry;
  register_echo(registry);
  wire::ParsedRequest request;
  request.packed = true;
  request.calls.push_back({0, make_call("EchoService", "Echo",
                                        {{"data", Value(1)}})});
  request.calls.push_back({1, make_call("Ghost", "Boo")});
  auto outcomes = dispatcher.execute(request, registry, nullptr);
  EXPECT_TRUE(outcomes[0].outcome.ok());
  EXPECT_FALSE(outcomes[1].outcome.ok());
  EXPECT_EQ(dispatcher.stats().faults_produced, 1u);
}

TEST(DispatcherTest, RouteOrdersById) {
  Dispatcher dispatcher;
  wire::ParsedResponse response;
  response.packed = true;
  response.outcomes.push_back({2, CallOutcome(Value("c"))});
  response.outcomes.push_back({0, CallOutcome(Value("a"))});
  response.outcomes.push_back({1, CallOutcome(Value("b"))});
  auto routed = dispatcher.route(std::move(response), 3);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value()[0].value(), Value("a"));
  EXPECT_EQ(routed.value()[1].value(), Value("b"));
  EXPECT_EQ(routed.value()[2].value(), Value("c"));
}

TEST(DispatcherTest, RouteRejectsCountMismatch) {
  Dispatcher dispatcher;
  wire::ParsedResponse response;
  response.outcomes.push_back({0, CallOutcome(Value(1))});
  EXPECT_FALSE(dispatcher.route(std::move(response), 2).ok());
}

TEST(DispatcherTest, RouteRejectsOutOfRangeId) {
  Dispatcher dispatcher;
  wire::ParsedResponse response;
  response.outcomes.push_back({5, CallOutcome(Value(1))});
  auto routed = dispatcher.route(std::move(response), 1);
  ASSERT_FALSE(routed.ok());
  EXPECT_NE(routed.error().message().find("out of range"), std::string::npos);
}

TEST(DispatcherTest, RouteRejectsDuplicateId) {
  Dispatcher dispatcher;
  wire::ParsedResponse response;
  response.outcomes.push_back({0, CallOutcome(Value(1))});
  response.outcomes.push_back({0, CallOutcome(Value(2))});
  auto routed = dispatcher.route(std::move(response), 2);
  ASSERT_FALSE(routed.ok());
  EXPECT_NE(routed.error().message().find("duplicate"), std::string::npos);
}

TEST(DispatcherTest, WsseVerifierEnforced) {
  soap::WsseVerifier verifier({"u", "p"});
  Dispatcher dispatcher(&verifier);
  Assembler bare_assembler;
  auto calls = echo_calls(1);
  auto rejected = dispatcher.parse_request(
      bare_assembler.assemble_request(calls, PackMode::kPacked));
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error().message().find("Security"), std::string::npos);

  soap::WsseTokenFactory factory({"u", "p"}, 3);
  Assembler secured_assembler(&factory);
  auto accepted = dispatcher.parse_request(
      secured_assembler.assemble_request(calls, PackMode::kPacked));
  EXPECT_TRUE(accepted.ok()) << accepted.error().to_string();
}

}  // namespace
}  // namespace spi::core
