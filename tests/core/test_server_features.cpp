// Server-side web-service features beyond the SPI core: the ?wsdl
// description endpoint and chunked request handling end to end.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/server.hpp"
#include "http/client.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"
#include "services/weather.hpp"
#include "soap/wsdl.hpp"

namespace spi::core {
namespace {

using soap::Value;

class ServerFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    services::register_weather_service(registry_);
    server_ = std::make_unique<SpiServer>(transport_,
                                          net::Endpoint{"server", 80},
                                          registry_);
    ASSERT_TRUE(server_->start().ok());
  }

  net::SimTransport transport_;
  ServiceRegistry registry_;
  std::unique_ptr<SpiServer> server_;
};

TEST_F(ServerFeaturesTest, WsdlEndpointServesParseableDescription) {
  http::HttpClient http(transport_, server_->endpoint());
  http::Request request;
  request.method = "GET";
  request.target = "/WeatherService?wsdl";
  auto response = http.send(std::move(request));
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  ASSERT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().headers.get("Content-Type"), "text/xml");

  auto description = soap::parse_wsdl(response.value().body);
  ASSERT_TRUE(description.ok()) << description.error().to_string();
  EXPECT_EQ(description.value().name, "WeatherService");
  ASSERT_EQ(description.value().operations.size(), 2u);
  EXPECT_EQ(description.value().operations[0].name, "GetWeather");
  EXPECT_NE(description.value().endpoint_url.find("server:80"),
            std::string::npos);
}

TEST_F(ServerFeaturesTest, WsdlForUnknownServiceIs404) {
  http::HttpClient http(transport_, server_->endpoint());
  http::Request request;
  request.method = "GET";
  request.target = "/GhostService?wsdl";
  auto response = http.send(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
}

TEST_F(ServerFeaturesTest, PlainGetIsStill405) {
  http::HttpClient http(transport_, server_->endpoint());
  http::Request request;
  request.method = "GET";
  request.target = "/spi";
  auto response = http.send(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 405);
}

TEST_F(ServerFeaturesTest, ChunkedRequestsServeNormally) {
  ClientOptions options;
  options.http_limits = {};
  SpiClient client(transport_, server_->endpoint(), options);
  // Chunked framing lives in http::ClientOptions; drive it via HttpClient
  // to prove the server-side parser path end to end.
  http::ClientOptions chunked;
  chunked.chunked_request_bytes = 16;
  http::HttpClient http(transport_, server_->endpoint(), chunked);

  // Hand-build the SOAP request the SpiClient would send.
  Assembler assembler;
  std::vector<ServiceCall> calls = {make_call(
      "EchoService", "Echo", {{"data", Value(std::string(500, 'c'))}})};
  std::string envelope = assembler.assemble_request(calls, PackMode::kSingle);
  auto response = http.post("/spi", std::move(envelope), "text/xml");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_NE(response.value().body.find(std::string(100, 'c')),
            std::string::npos);
}

TEST(ChunkedSerializationTest, RoundTripsThroughParser) {
  http::Request request;
  request.method = "POST";
  request.target = "/spi";
  request.body = "0123456789abcdef0123456789";  // not a multiple of chunk
  std::string wire = request.serialize_chunked(8);
  EXPECT_NE(wire.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);

  http::MessageParser parser(http::MessageParser::Mode::kRequest);
  parser.feed(wire);
  auto parsed = parser.poll_request();
  ASSERT_TRUE(parsed.has_value()) << (parser.failed()
                                          ? parser.error().to_string()
                                          : "incomplete");
  EXPECT_EQ(parsed->body, request.body);
}

TEST(ChunkedSerializationTest, EmptyBodyIsJustTerminalChunk) {
  http::Request request;
  request.body.clear();
  std::string wire = request.serialize_chunked(8);
  http::MessageParser parser(http::MessageParser::Mode::kRequest);
  parser.feed(wire);
  auto parsed = parser.poll_request();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->body.empty());
}

}  // namespace
}  // namespace spi::core
