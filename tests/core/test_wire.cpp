// The SPI wire format: serialization/parse round trips for both framings,
// the Figure 4 example, and malformed-message rejection.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/wire.hpp"
#include "soap/envelope.hpp"

namespace spi::core::wire {
namespace {

using soap::Value;

ServiceCall weather_call(std::string_view city) {
  return make_call("WeatherService", "GetWeather",
                   {{"city", Value(city)}});
}

Result<ParsedRequest> round_trip_request(std::span<const ServiceCall> calls,
                                         bool packed) {
  std::string body = packed ? serialize_packed_request(calls)
                            : serialize_single_request(calls.front());
  auto envelope = soap::Envelope::parse(soap::build_envelope(body));
  EXPECT_TRUE(envelope.ok()) << envelope.error().to_string();
  return parse_request(envelope.value());
}

TEST(WireRequestTest, SingleRequestRoundTrip) {
  ServiceCall call = weather_call("Beijing");
  auto parsed = round_trip_request(std::span(&call, 1), /*packed=*/false);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_FALSE(parsed.value().packed);
  ASSERT_EQ(parsed.value().calls.size(), 1u);
  EXPECT_EQ(parsed.value().calls[0].id, 0u);
  EXPECT_EQ(parsed.value().calls[0].call, call);
}

TEST(WireRequestTest, PackedRequestRoundTripPreservesOrderAndIds) {
  std::vector<ServiceCall> calls = {weather_call("Beijing"),
                                    weather_call("Shanghai"),
                                    make_call("EchoService", "Echo",
                                              {{"data", Value(42)}})};
  auto parsed = round_trip_request(calls, /*packed=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().packed);
  ASSERT_EQ(parsed.value().calls.size(), 3u);
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(parsed.value().calls[i].id, i);
    EXPECT_EQ(parsed.value().calls[i].call, calls[i]);
  }
}

TEST(WireRequestTest, Figure4ShapeOnTheWire) {
  // The paper's Figure 4: two weather queries in one Parallel_Method.
  std::vector<ServiceCall> calls = {weather_call("Beijing"),
                                    weather_call("Shanghai")};
  std::string body = serialize_packed_request(calls);
  EXPECT_NE(body.find("<spi:Parallel_Method>"), std::string::npos);
  EXPECT_NE(body.find("service=\"WeatherService\""), std::string::npos);
  EXPECT_NE(body.find("operation=\"GetWeather\""), std::string::npos);
  EXPECT_NE(body.find(">Beijing<"), std::string::npos);
  EXPECT_NE(body.find(">Shanghai<"), std::string::npos);
  // Exactly two Call children.
  size_t count = 0;
  for (size_t pos = 0; (pos = body.find("<spi:Call ", pos)) != std::string::npos;
       ++count, ++pos) {
  }
  EXPECT_EQ(count, 2u);
}

TEST(WireRequestTest, EmptyParamsSerialize) {
  ServiceCall call = make_call("S", "Op");
  auto parsed = round_trip_request(std::span(&call, 1), /*packed=*/false);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().calls[0].call.params.empty());
}

TEST(WireRequestTest, RejectsEmptyBody) {
  auto envelope = soap::Envelope::parse(soap::build_envelope(""));
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(parse_request(envelope.value()).ok());
}

TEST(WireRequestTest, RejectsMissingServiceAttribute) {
  auto envelope = soap::Envelope::parse(
      soap::build_envelope("<spi:SomeOp><x>1</x></spi:SomeOp>"));
  ASSERT_TRUE(envelope.ok());
  auto parsed = parse_request(envelope.value());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message().find("spi:service"), std::string::npos);
}

TEST(WireRequestTest, RejectsEmptyParallelMethod) {
  auto envelope = soap::Envelope::parse(
      soap::build_envelope("<spi:Parallel_Method/>"));
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(parse_request(envelope.value()).ok());
}

TEST(WireRequestTest, RejectsCallWithoutId) {
  auto envelope = soap::Envelope::parse(soap::build_envelope(
      R"(<spi:Parallel_Method><spi:Call service="S" operation="O"/></spi:Parallel_Method>)"));
  ASSERT_TRUE(envelope.ok());
  auto parsed = parse_request(envelope.value());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message().find("id"), std::string::npos);
}

TEST(WireRequestTest, RejectsForeignElementInParallelMethod) {
  auto envelope = soap::Envelope::parse(soap::build_envelope(
      "<spi:Parallel_Method><spi:NotACall/></spi:Parallel_Method>"));
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(parse_request(envelope.value()).ok());
}

// --- responses ----------------------------------------------------------------

Result<ParsedResponse> round_trip_response(
    std::span<const IndexedOutcome> outcomes, const ServiceCall& call,
    bool packed) {
  std::string body =
      packed ? serialize_packed_response(outcomes)
             : serialize_single_response(call, outcomes.front().outcome);
  auto envelope = soap::Envelope::parse(soap::build_envelope(body));
  EXPECT_TRUE(envelope.ok());
  return parse_response(envelope.value());
}

TEST(WireResponseTest, SingleSuccessRoundTrip) {
  ServiceCall call = weather_call("Beijing");
  std::vector<IndexedOutcome> outcomes;
  outcomes.push_back({0, CallOutcome(Value("sunny"))});
  auto parsed = round_trip_response(outcomes, call, /*packed=*/false);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().packed);
  ASSERT_EQ(parsed.value().outcomes.size(), 1u);
  EXPECT_EQ(parsed.value().outcomes[0].outcome.value(), Value("sunny"));
}

TEST(WireResponseTest, SingleResponseNamesOperation) {
  ServiceCall call = weather_call("Beijing");
  std::string body = serialize_single_response(call, CallOutcome(Value(1)));
  EXPECT_NE(body.find("<spi:GetWeatherResponse>"), std::string::npos);
}

TEST(WireResponseTest, SingleFaultRoundTrip) {
  ServiceCall call = weather_call("Atlantis");
  std::vector<IndexedOutcome> outcomes;
  outcomes.push_back(
      {0, CallOutcome(Error(ErrorCode::kNotFound, "no such city"))});
  auto parsed = round_trip_response(outcomes, call, /*packed=*/false);
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed.value().outcomes[0].outcome.ok());
  const Error& error = parsed.value().outcomes[0].outcome.error();
  EXPECT_EQ(error.code(), ErrorCode::kFault);
  EXPECT_NE(error.message().find("no such city"), std::string::npos);
}

TEST(WireResponseTest, PackedMixedOutcomesRoundTrip) {
  std::vector<IndexedOutcome> outcomes;
  outcomes.push_back({0, CallOutcome(Value("ok"))});
  outcomes.push_back(
      {1, CallOutcome(Error(ErrorCode::kInternal, "worker died"))});
  outcomes.push_back({2, CallOutcome(Value(soap::Struct{{"k", Value(9)}}))});
  auto parsed = round_trip_response(outcomes, ServiceCall{}, /*packed=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().packed);
  ASSERT_EQ(parsed.value().outcomes.size(), 3u);
  EXPECT_TRUE(parsed.value().outcomes[0].outcome.ok());
  EXPECT_FALSE(parsed.value().outcomes[1].outcome.ok());
  EXPECT_TRUE(parsed.value().outcomes[2].outcome.ok());
  EXPECT_EQ(parsed.value().outcomes[2].outcome.value().field("k")->as_int(),
            9);
}

TEST(WireResponseTest, PackedPreservesArbitraryIds) {
  // The server may reorder; ids are authoritative.
  std::vector<IndexedOutcome> outcomes;
  outcomes.push_back({2, CallOutcome(Value("two"))});
  outcomes.push_back({0, CallOutcome(Value("zero"))});
  outcomes.push_back({1, CallOutcome(Value("one"))});
  auto parsed = round_trip_response(outcomes, ServiceCall{}, /*packed=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().outcomes[0].id, 2u);
  EXPECT_EQ(parsed.value().outcomes[1].id, 0u);
}

TEST(WireResponseTest, RejectsCallResponseWithoutId) {
  auto envelope = soap::Envelope::parse(soap::build_envelope(
      "<spi:Parallel_Response><spi:CallResponse><return "
      "xsi:type=\"xsd:int\">1</return></spi:CallResponse>"
      "</spi:Parallel_Response>"));
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(parse_response(envelope.value()).ok());
}

TEST(WireResponseTest, RejectsEntryWithoutReturnOrFault) {
  auto envelope = soap::Envelope::parse(soap::build_envelope(
      "<spi:Parallel_Response><spi:CallResponse id=\"0\"><junk/>"
      "</spi:CallResponse></spi:Parallel_Response>"));
  ASSERT_TRUE(envelope.ok());
  EXPECT_FALSE(parse_response(envelope.value()).ok());
}

TEST(WireResponseTest, BareFaultBodyParsesAsSingleFault) {
  soap::Fault fault;
  fault.faultstring = "top-level rejection";
  auto envelope = soap::Envelope::parse(soap::build_envelope(fault.to_xml()));
  ASSERT_TRUE(envelope.ok());
  auto parsed = parse_response(envelope.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().packed);
  EXPECT_FALSE(parsed.value().outcomes[0].outcome.ok());
}

// Property: pack(unpack(x)) == x over randomized batches (DESIGN.md §5).
class WirePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WirePropertyTest, PackedRequestRoundTripsAnyBatch) {
  SplitMix64 rng(0x31AE + GetParam());
  std::vector<ServiceCall> calls;
  for (size_t i = 0; i < GetParam(); ++i) {
    soap::Struct params;
    size_t n = rng.next_below(3);
    for (size_t p = 0; p < n; ++p) {
      params.emplace_back("p" + std::to_string(p),
                          Value(rng.ascii_string(rng.next_below(30))));
    }
    calls.push_back(make_call("Svc" + std::to_string(rng.next_below(4)),
                              "Op" + std::to_string(rng.next_below(4)),
                              std::move(params)));
  }
  auto parsed = round_trip_request(calls, /*packed=*/true);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().calls.size(), calls.size());
  for (size_t i = 0; i < calls.size(); ++i) {
    EXPECT_EQ(parsed.value().calls[i].call, calls[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, WirePropertyTest,
                         ::testing::Values(1, 2, 3, 8, 32, 128));

}  // namespace
}  // namespace spi::core::wire
