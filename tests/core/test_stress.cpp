// Mixed-strategy stress: many client threads hammer one staged server with
// every request style at once (singles, packed batches, plans, batch
// futures, faults); every response must be correct and attributable.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/auto_batcher.hpp"
#include "core/client.hpp"
#include "core/params.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"

namespace spi::core {
namespace {

using soap::Value;

TEST(SpiStressTest, MixedStrategiesUnderConcurrency) {
  net::SimTransport transport;
  ServiceRegistry registry;
  services::register_echo_service(registry);
  (void)registry.register_operation(
      "Math", "Square", [](const soap::Struct& params) -> Result<Value> {
        auto n = require_int(params, "n");
        if (!n.ok()) return n.error();
        return Value(n.value() * n.value());
      });

  ServerOptions options;
  options.protocol_threads = 16;
  options.application_threads = 16;
  SpiServer server(transport, net::Endpoint{"server", 80}, registry,
                   options);
  ASSERT_TRUE(server.start().ok());

  constexpr int kThreads = 6;
  constexpr int kRounds = 30;
  std::atomic<int> errors{0};
  std::atomic<std::uint64_t> calls_made{0};
  std::atomic<std::uint64_t> faults_injected{0};

  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        SpiClient client(transport, server.endpoint());
        for (int round = 0; round < kRounds; ++round) {
          int style = (t + round) % 4;
          switch (style) {
            case 0: {  // single call
              std::string payload =
                  "t" + std::to_string(t) + "r" + std::to_string(round);
              auto outcome = client.call("EchoService", "Echo",
                                         {{"data", Value(payload)}});
              ++calls_made;
              if (!outcome.ok() ||
                  outcome.value().as_string() != payload) {
                ++errors;
              }
              break;
            }
            case 1: {  // packed batch with one deliberate fault
              std::vector<ServiceCall> calls;
              for (int i = 0; i < 6; ++i) {
                calls.push_back(make_call(
                    "Math", "Square",
                    {{"n", Value(t * 1000 + round * 10 + i)}}));
              }
              calls.push_back(make_call("Math", "NoSuchOp"));
              ++faults_injected;
              auto outcomes = client.call_packed(calls);
              calls_made += calls.size();
              for (int i = 0; i < 6; ++i) {
                std::int64_t n = t * 1000 + round * 10 + i;
                if (!outcomes[static_cast<size_t>(i)].ok() ||
                    outcomes[static_cast<size_t>(i)].value().as_int() !=
                        n * n) {
                  ++errors;
                }
              }
              if (outcomes[6].ok()) ++errors;  // must be a fault
              break;
            }
            case 2: {  // remote plan: square then square again
              RemotePlan plan;
              plan.step("Math", "Square", {PlanArg::value("n", Value(3))})
                  .step("Math", "Square", {PlanArg::ref("n", 0)});
              auto outcomes = client.execute_plan(plan);
              calls_made += 2;
              if (!outcomes.ok() || !outcomes.value()[1].ok() ||
                  outcomes.value()[1].value().as_int() != 81) {
                ++errors;
              }
              break;
            }
            default: {  // Batch futures
              auto batch = client.create_batch();
              auto a = batch.add("Math", "Square", {{"n", Value(5)}});
              auto b = batch.add("EchoService", "Reverse",
                                 {{"data", Value("stress")}});
              batch.execute();
              calls_made += 2;
              auto av = a.get();
              auto bv = b.get();
              if (!av.ok() || av.value().as_int() != 25) ++errors;
              if (!bv.ok() || bv.value().as_string() != "sserts") ++errors;
              break;
            }
          }
        }
      });
    }
  }

  EXPECT_EQ(errors.load(), 0);
  auto stats = server.stats();
  EXPECT_EQ(stats.dispatcher.calls_dispatched, calls_made.load());
  // The server saw exactly the faults we injected, no more.
  EXPECT_EQ(stats.dispatcher.faults_produced, faults_injected.load());
  server.stop();
}

TEST(SpiStressTest, AutoBatcherSharedAcrossManyProducers) {
  net::SimTransport transport;
  ServiceRegistry registry;
  services::register_echo_service(registry);
  SpiServer server(transport, net::Endpoint{"server", 80}, registry);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport, server.endpoint());

  AutoBatcher::Options options;
  options.max_batch = 16;
  options.max_delay = std::chrono::milliseconds(1);
  AutoBatcher batcher(client, options);

  std::atomic<int> errors{0};
  {
    std::vector<std::jthread> producers;
    for (int t = 0; t < 8; ++t) {
      producers.emplace_back([&, t] {
        std::vector<std::pair<std::string, std::future<CallOutcome>>> inflight;
        for (int i = 0; i < 40; ++i) {
          std::string payload =
              std::to_string(t) + "#" + std::to_string(i);
          inflight.emplace_back(payload,
                                batcher.call_async("EchoService", "Echo",
                                                   {{"data", Value(payload)}}));
        }
        for (auto& [payload, future] : inflight) {
          auto outcome = future.get();
          if (!outcome.ok() || outcome.value().as_string() != payload) {
            ++errors;
          }
        }
      });
    }
  }
  EXPECT_EQ(errors.load(), 0);
  auto stats = batcher.stats();
  EXPECT_EQ(stats.calls, 320u);
  EXPECT_LT(stats.batches, 320u);  // actual coalescing happened
  server.stop();
}

}  // namespace
}  // namespace spi::core
