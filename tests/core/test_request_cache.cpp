// RequestTemplateCache: byte-identity with full serialization (the only
// correctness criterion that matters for a serialization cache), shape
// handling, LRU eviction, and fallbacks.
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "core/request_cache.hpp"
#include "core/wire.hpp"
#include "soap/envelope.hpp"

namespace spi::core {
namespace {

using soap::Value;

std::string reference(const ServiceCall& call) {
  return soap::build_envelope(wire::serialize_single_request(call));
}

TEST(RequestCacheTest, FirstRenderMatchesFullSerialization) {
  RequestTemplateCache cache;
  ServiceCall call = make_call("Echo", "Echo", {{"data", Value("hello")}});
  EXPECT_EQ(cache.render(call), reference(call));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(RequestCacheTest, RepeatRendersHitAndStayIdentical) {
  RequestTemplateCache cache;
  for (int i = 0; i < 20; ++i) {
    ServiceCall call = make_call(
        "Weather", "GetWeather", {{"city", Value("city-" + std::to_string(i))}});
    EXPECT_EQ(cache.render(call), reference(call)) << i;
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 19u);
}

TEST(RequestCacheTest, EscapingStillHappensOnPatch) {
  RequestTemplateCache cache;
  ServiceCall plain = make_call("S", "Op", {{"data", Value("warmup")}});
  (void)cache.render(plain);
  ServiceCall nasty = make_call(
      "S", "Op", {{"data", Value("a<b>&c \"quotes\" '&amp;'")}});
  EXPECT_EQ(cache.render(nasty), reference(nasty));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(RequestCacheTest, MultipleParamsPatchInOrder) {
  RequestTemplateCache cache;
  ServiceCall call = make_call("S", "Op", {{"first", Value("1st")},
                                           {"second", Value("2nd")},
                                           {"third", Value("3rd")}});
  (void)cache.render(call);
  ServiceCall changed = make_call("S", "Op", {{"first", Value("x")},
                                              {"second", Value("<y>")},
                                              {"third", Value("")}});
  EXPECT_EQ(cache.render(changed), reference(changed));
}

TEST(RequestCacheTest, DifferentShapesGetDifferentTemplates) {
  RequestTemplateCache cache;
  ServiceCall a = make_call("S", "Op", {{"x", Value("1")}});
  ServiceCall b = make_call("S", "Op", {{"y", Value("1")}});   // other name
  ServiceCall c = make_call("S", "Op2", {{"x", Value("1")}});  // other op
  ServiceCall d = make_call("S2", "Op", {{"x", Value("1")}});  // other svc
  for (const auto& call : {a, b, c, d}) {
    EXPECT_EQ(cache.render(call), reference(call));
  }
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.size(), 4u);
}

TEST(RequestCacheTest, NonStringParamsFallBack) {
  RequestTemplateCache cache;
  ServiceCall call = make_call("S", "Op", {{"n", Value(42)}});
  EXPECT_EQ(cache.render(call), reference(call));
  EXPECT_EQ(cache.stats().fallbacks, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RequestCacheTest, ParameterlessCallsFallBack) {
  RequestTemplateCache cache;
  ServiceCall call = make_call("S", "Ping");
  EXPECT_EQ(cache.render(call), reference(call));
  EXPECT_EQ(cache.stats().fallbacks, 1u);
}

TEST(RequestCacheTest, SentinelCollisionFallsBack) {
  RequestTemplateCache cache;
  ServiceCall call = make_call(
      "S", "Op", {{"data", Value("evil __SPI_TMPL_SLOT_0__ payload")}});
  EXPECT_EQ(cache.render(call), reference(call));
  EXPECT_EQ(cache.stats().fallbacks, 1u);
}

TEST(RequestCacheTest, LruEvictionBoundsSize) {
  RequestTemplateCache cache(/*capacity=*/2);
  ServiceCall a = make_call("A", "Op", {{"x", Value("1")}});
  ServiceCall b = make_call("B", "Op", {{"x", Value("1")}});
  ServiceCall c = make_call("C", "Op", {{"x", Value("1")}});
  (void)cache.render(a);
  (void)cache.render(b);
  (void)cache.render(a);  // a is now most recent
  (void)cache.render(c);  // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  (void)cache.render(b);  // rebuilt
  EXPECT_EQ(cache.stats().misses, 4u);
  // Everything still byte-correct post-eviction.
  EXPECT_EQ(cache.render(b), reference(b));
}

TEST(RequestCacheTest, PropertyRandomStringCallsAlwaysByteIdentical) {
  RequestTemplateCache cache(/*capacity=*/8);
  SplitMix64 rng(0xCACE);
  for (int i = 0; i < 300; ++i) {
    soap::Struct params;
    size_t n = 1 + rng.next_below(3);
    for (size_t p = 0; p < n; ++p) {
      params.emplace_back("p" + std::to_string(p),
                          Value(rng.ascii_string(rng.next_below(64))));
    }
    ServiceCall call =
        make_call("Svc" + std::to_string(rng.next_below(12)), "Op",
                  std::move(params));
    ASSERT_EQ(cache.render(call), reference(call)) << "iteration " << i;
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);  // capacity 8, 12 services x shapes
}

}  // namespace
}  // namespace spi::core
