// AutoBatcher (the paper's §5 "automatic communication" future work):
// transparent coalescing of individually-issued calls into packed
// messages.
#include <gtest/gtest.h>

#include "benchsupport/workload.hpp"
#include "core/auto_batcher.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"

namespace spi::core {
namespace {

using soap::Value;

class AutoBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    server_ = std::make_unique<SpiServer>(transport_,
                                          net::Endpoint{"server", 80},
                                          registry_);
    ASSERT_TRUE(server_->start().ok());
    client_ = std::make_unique<SpiClient>(transport_, server_->endpoint());
  }

  AutoBatcher::Options slow_timer() {
    AutoBatcher::Options options;
    options.max_batch = 64;
    options.max_delay = std::chrono::seconds(10);  // timer never fires
    return options;
  }

  net::SimTransport transport_;
  ServiceRegistry registry_;
  std::unique_ptr<SpiServer> server_;
  std::unique_ptr<SpiClient> client_;
};

TEST_F(AutoBatcherTest, RejectsZeroMaxBatch) {
  AutoBatcher::Options options;
  options.max_batch = 0;
  EXPECT_THROW(AutoBatcher(*client_, options), SpiError);
}

TEST_F(AutoBatcherTest, SingleCallCompletesViaTimer) {
  AutoBatcher::Options options;
  options.max_batch = 64;
  options.max_delay = std::chrono::milliseconds(5);
  AutoBatcher batcher(*client_, options);
  auto future = batcher.call_async("EchoService", "Echo",
                                   {{"data", Value("solo")}});
  CallOutcome outcome = future.get();
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "solo");
  auto stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.timer_flushes, 1u);
}

TEST_F(AutoBatcherTest, CoalescesBurstIntoOneEnvelope) {
  AutoBatcher batcher(*client_, slow_timer());
  std::vector<std::future<CallOutcome>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(batcher.call_async(
        "EchoService", "Echo", {{"data", Value(std::to_string(i))}}));
  }
  batcher.flush();
  for (int i = 0; i < 10; ++i) {
    CallOutcome outcome = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().as_string(), std::to_string(i));
  }
  // Exactly one packed envelope crossed the wire.
  EXPECT_EQ(client_->stats().assembler.envelopes, 1u);
  EXPECT_EQ(client_->stats().assembler.packed_envelopes, 1u);
  EXPECT_EQ(batcher.stats().largest_batch, 10u);
}

TEST_F(AutoBatcherTest, MaxBatchTriggersImmediateFlush) {
  AutoBatcher::Options options = slow_timer();
  options.max_batch = 4;
  AutoBatcher batcher(*client_, options);
  std::vector<std::future<CallOutcome>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(batcher.call_async(
        "EchoService", "Echo", {{"data", Value(i)}}));
  }
  // No flush() call: the size trigger must ship the batch on its own.
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_GE(batcher.stats().full_flushes, 1u);
}

TEST_F(AutoBatcherTest, FaultsPropagatePerCall) {
  AutoBatcher batcher(*client_, slow_timer());
  auto good = batcher.call_async("EchoService", "Echo",
                                 {{"data", Value("fine")}});
  auto bad = batcher.call_async("EchoService", "NoSuchOp", {});
  batcher.flush();
  EXPECT_TRUE(good.get().ok());
  CallOutcome failed = bad.get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().code(), ErrorCode::kFault);
}

TEST_F(AutoBatcherTest, ShutdownFlushesPendingCalls) {
  std::future<CallOutcome> future;
  {
    AutoBatcher batcher(*client_, slow_timer());
    future = batcher.call_async("EchoService", "Echo",
                                {{"data", Value("draining")}});
  }  // destructor shutdown
  CallOutcome outcome = future.get();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().as_string(), "draining");
}

TEST_F(AutoBatcherTest, CallAfterShutdownThrows) {
  AutoBatcher batcher(*client_, slow_timer());
  batcher.shutdown();
  batcher.shutdown();  // idempotent
  EXPECT_THROW(batcher.call_async("EchoService", "Echo", {}), SpiError);
}

TEST_F(AutoBatcherTest, FlushOnEmptyBatcherReturns) {
  AutoBatcher batcher(*client_, slow_timer());
  batcher.flush();  // must not hang
  EXPECT_EQ(batcher.stats().batches, 0u);
}

TEST_F(AutoBatcherTest, ManyThreadsIssueConcurrently) {
  AutoBatcher::Options options;
  options.max_batch = 8;
  options.max_delay = std::chrono::milliseconds(2);
  AutoBatcher batcher(*client_, options);

  std::atomic<int> wrong{0};
  {
    std::vector<std::jthread> issuers;
    for (int t = 0; t < 4; ++t) {
      issuers.emplace_back([&, t] {
        for (int i = 0; i < 25; ++i) {
          std::string payload = std::to_string(t) + "/" + std::to_string(i);
          auto outcome = batcher
                             .call_async("EchoService", "Echo",
                                         {{"data", Value(payload)}})
                             .get();
          if (!outcome.ok() || outcome.value().as_string() != payload) {
            ++wrong;
          }
        }
      });
    }
  }
  EXPECT_EQ(wrong.load(), 0);
  auto stats = batcher.stats();
  EXPECT_EQ(stats.calls, 100u);
  EXPECT_GE(stats.batches, 1u);
  // Batching must have actually coalesced: fewer envelopes than calls.
  EXPECT_LT(stats.batches, 100u);
}

TEST_F(AutoBatcherTest, TimerHonoursMaxDelay) {
  AutoBatcher::Options options;
  options.max_batch = 1000;
  options.max_delay = std::chrono::milliseconds(30);
  AutoBatcher batcher(*client_, options);
  Stopwatch watch;
  auto future = batcher.call_async("EchoService", "Echo",
                                   {{"data", Value("waiting")}});
  ASSERT_TRUE(future.get().ok());
  double ms = watch.elapsed_ms();
  EXPECT_GE(ms, 25.0);   // held back close to max_delay...
  EXPECT_LT(ms, 1000.0); // ...but not forever
}

}  // namespace
}  // namespace spi::core
