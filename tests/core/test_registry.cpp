#include <gtest/gtest.h>

#include <thread>

#include "core/registry.hpp"

namespace spi::core {
namespace {

using soap::Value;

OperationHandler constant(Value value) {
  return [value](const soap::Struct&) -> Result<Value> { return value; };
}

TEST(RegistryTest, RegisterAndFind) {
  ServiceRegistry registry;
  ASSERT_TRUE(registry.register_operation("S", "Op", constant(Value(1))).ok());
  auto handler = registry.find("S", "Op");
  ASSERT_TRUE(handler.ok());
  EXPECT_EQ(handler.value()({}).value(), Value(1));
}

TEST(RegistryTest, DuplicateRegistrationFails) {
  ServiceRegistry registry;
  ASSERT_TRUE(registry.register_operation("S", "Op", constant(Value(1))).ok());
  Status dup = registry.register_operation("S", "Op", constant(Value(2)));
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code(), ErrorCode::kAlreadyExists);
}

TEST(RegistryTest, RejectsEmptyNamesAndNullHandlers) {
  ServiceRegistry registry;
  EXPECT_FALSE(registry.register_operation("", "Op", constant(Value(1))).ok());
  EXPECT_FALSE(registry.register_operation("S", "", constant(Value(1))).ok());
  EXPECT_FALSE(registry.register_operation("S", "Op", nullptr).ok());
}

TEST(RegistryTest, FindDistinguishesServiceFromOperation) {
  ServiceRegistry registry;
  (void)registry.register_operation("S", "Op", constant(Value(1)));
  auto no_service = registry.find("T", "Op");
  ASSERT_FALSE(no_service.ok());
  EXPECT_NE(no_service.error().message().find("unknown service"),
            std::string::npos);
  auto no_operation = registry.find("S", "Other");
  ASSERT_FALSE(no_operation.ok());
  EXPECT_NE(no_operation.error().message().find("no operation"),
            std::string::npos);
}

TEST(RegistryTest, InvokeRunsHandler) {
  ServiceRegistry registry;
  (void)registry.register_operation(
      "Math", "Add", [](const soap::Struct& params) -> Result<Value> {
        return Value(params[0].second.as_int() + params[1].second.as_int());
      });
  CallOutcome outcome = registry.invoke(
      make_call("Math", "Add", {{"a", Value(2)}, {"b", Value(3)}}));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().as_int(), 5);
}

TEST(RegistryTest, InvokeMapsUnknownTargetToError) {
  ServiceRegistry registry;
  CallOutcome outcome = registry.invoke(make_call("Nope", "Nada"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kNotFound);
}

TEST(RegistryTest, InvokeCatchesSpiError) {
  ServiceRegistry registry;
  (void)registry.register_operation(
      "S", "Throws", [](const soap::Struct&) -> Result<Value> {
        throw SpiError(ErrorCode::kCapacityExceeded, "full");
      });
  CallOutcome outcome = registry.invoke(make_call("S", "Throws"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kCapacityExceeded);
}

TEST(RegistryTest, InvokeCatchesStdException) {
  ServiceRegistry registry;
  (void)registry.register_operation(
      "S", "Throws", [](const soap::Struct&) -> Result<Value> {
        throw std::runtime_error("unexpected");
      });
  CallOutcome outcome = registry.invoke(make_call("S", "Throws"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kInternal);
  EXPECT_NE(outcome.error().message().find("unexpected"), std::string::npos);
}

TEST(RegistryTest, EnumeratesServicesAndOperations) {
  ServiceRegistry registry;
  (void)registry.register_operation("B", "Y", constant(Value(1)));
  (void)registry.register_operation("A", "X", constant(Value(1)));
  (void)registry.register_operation("A", "W", constant(Value(1)));
  EXPECT_EQ(registry.service_names(),
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(registry.operation_names("A"),
            (std::vector<std::string>{"W", "X"}));
  EXPECT_TRUE(registry.operation_names("missing").empty());
  EXPECT_EQ(registry.operation_count(), 3u);
}

TEST(RegistryTest, ConcurrentInvokeAndRegister) {
  ServiceRegistry registry;
  (void)registry.register_operation("S", "Op", constant(Value(7)));
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          if (!registry.invoke(make_call("S", "Op")).ok()) ++failures;
        }
      });
    }
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        (void)registry.register_operation("S", "Extra" + std::to_string(i),
                                          constant(Value(i)));
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(registry.operation_count(), 101u);
}

TEST(ServiceBinderTest, FluentRegistration) {
  ServiceRegistry registry;
  ServiceBinder(registry, "Chained")
      .bind("A", constant(Value(1)))
      .bind("B", constant(Value(2)));
  EXPECT_TRUE(registry.find("Chained", "A").ok());
  EXPECT_TRUE(registry.find("Chained", "B").ok());
}

TEST(ServiceBinderTest, DuplicateBindThrows) {
  ServiceRegistry registry;
  ServiceBinder binder(registry, "S");
  binder.bind("Op", constant(Value(1)));
  EXPECT_THROW(binder.bind("Op", constant(Value(2))), SpiError);
}

}  // namespace
}  // namespace spi::core
