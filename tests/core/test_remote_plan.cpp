// Remote execution (the SPI suite's second interface): path resolution,
// plan validation, wire round trips, dependency semantics, and the full
// client->server chain including the travel-agent tail sequence.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/remote_plan.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/airline.hpp"
#include "services/creditcard.hpp"
#include "soap/envelope.hpp"

namespace spi::core {
namespace {

using soap::Value;

// --- resolve_result_path -------------------------------------------------------

TEST(ResolvePathTest, EmptyPathReturnsWholeValue) {
  Value value(soap::Struct{{"a", Value(1)}});
  auto resolved = resolve_result_path(value, "");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), value);
}

TEST(ResolvePathTest, WalksNestedStructs) {
  Value value(soap::Struct{
      {"outer", Value(soap::Struct{{"inner", Value("found")}})}});
  auto resolved = resolve_result_path(value, "outer.inner");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), Value("found"));
}

TEST(ResolvePathTest, IndexesArrays) {
  Value value(soap::Struct{
      {"flights", Value(soap::Array{
                      Value(soap::Struct{{"id", Value("F-0")}}),
                      Value(soap::Struct{{"id", Value("F-1")}}),
                  })}});
  auto resolved = resolve_result_path(value, "flights[1].id");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), Value("F-1"));
}

TEST(ResolvePathTest, SupportsNestedIndexing) {
  Value value(soap::Array{Value(soap::Array{Value(1), Value(2)})});
  // A bare [i][j] segment indexes the current value without a field walk...
  Value wrapped(soap::Struct{{"m", value}});
  auto resolved = resolve_result_path(wrapped, "m[0][1]");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), Value(2));
}

TEST(ResolvePathTest, ErrorsAreDescriptive) {
  Value value(soap::Struct{{"a", Value(soap::Array{Value(1)})}});
  EXPECT_FALSE(resolve_result_path(value, "missing").ok());
  EXPECT_FALSE(resolve_result_path(value, "a[5]").ok());     // out of range
  EXPECT_FALSE(resolve_result_path(value, "a.b").ok());      // not a struct
  EXPECT_FALSE(resolve_result_path(value, "a[x]").ok());     // bad index
  EXPECT_FALSE(resolve_result_path(value, "a[0").ok());      // unterminated
  EXPECT_FALSE(resolve_result_path(Value(1), "f").ok());     // scalar walk
  EXPECT_FALSE(resolve_result_path(value, "a..b").ok());     // empty segment
}

// --- validation ------------------------------------------------------------------

TEST(PlanValidateTest, AcceptsWellFormedPlan) {
  RemotePlan plan;
  plan.step("S", "First", {PlanArg::value("x", Value(1))})
      .step("S", "Second", {PlanArg::ref("y", 0, "field")});
  EXPECT_TRUE(plan.validate().ok());
}

TEST(PlanValidateTest, RejectsEmptyPlan) {
  EXPECT_FALSE(RemotePlan{}.validate().ok());
}

TEST(PlanValidateTest, RejectsForwardAndSelfReferences) {
  RemotePlan self;
  self.step("S", "Op", {PlanArg::ref("x", 0)});
  EXPECT_FALSE(self.validate().ok());

  RemotePlan forward;
  forward.step("S", "Op", {PlanArg::ref("x", 1)}).step("S", "Op2");
  EXPECT_FALSE(forward.validate().ok());
}

TEST(PlanValidateTest, RejectsAnonymousArgsAndEmptyNames) {
  RemotePlan plan;
  plan.step("S", "Op", {PlanArg::value("", Value(1))});
  EXPECT_FALSE(plan.validate().ok());
  RemotePlan no_service;
  no_service.step("", "Op");
  EXPECT_FALSE(no_service.validate().ok());
}

// --- wire round trip ----------------------------------------------------------------

TEST(PlanWireTest, SerializeParseRoundTrip) {
  RemotePlan plan;
  plan.step("Airline", "Reserve",
            {PlanArg::value("flight_id", Value("NB-9"))})
      .step("Card", "Authorize",
            {PlanArg::value("card_number", Value("4111111111111111")),
             PlanArg::ref("amount_cents", 0, "price_cents")})
      .step("Airline", "ConfirmReservation",
            {PlanArg::ref("reservation_id", 0, "reservation_id"),
             PlanArg::ref("authorization_id", 1, "authorization_id")});

  auto document = xml::parse_document(serialize_plan(plan));
  ASSERT_TRUE(document.ok());
  auto parsed = parse_plan(document.value().root);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), plan);
}

TEST(PlanWireTest, ParseRejectsMalformedPlans) {
  auto parse_fragment = [](std::string_view xml) {
    auto document = xml::parse_document(xml);
    EXPECT_TRUE(document.ok());
    return parse_plan(document.value().root);
  };
  EXPECT_FALSE(parse_fragment("<spi:NotAPlan/>").ok());
  // Step ids must be dense ascending.
  EXPECT_FALSE(parse_fragment(
                   R"(<spi:Remote_Execution><spi:Step id="1" service="S" operation="O"/></spi:Remote_Execution>)")
                   .ok());
  // Arg needs name + Value or Ref.
  EXPECT_FALSE(parse_fragment(
                   R"(<spi:Remote_Execution><spi:Step id="0" service="S" operation="O"><spi:Arg name="x"/></spi:Step></spi:Remote_Execution>)")
                   .ok());
  // Ref without step attribute.
  EXPECT_FALSE(parse_fragment(
                   R"(<spi:Remote_Execution><spi:Step id="0" service="S" operation="O"><spi:Arg name="x"><spi:Ref/></spi:Arg></spi:Step></spi:Remote_Execution>)")
                   .ok());
  // Forward reference caught at parse time.
  EXPECT_FALSE(parse_fragment(
                   R"(<spi:Remote_Execution><spi:Step id="0" service="S" operation="O"><spi:Arg name="x"><spi:Ref step="0"/></spi:Arg></spi:Step></spi:Remote_Execution>)")
                   .ok());
}

// --- execution -------------------------------------------------------------------

class PlanExecutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)registry_.register_operation(
        "Math", "MakePair", [](const soap::Struct&) -> Result<Value> {
          return Value(soap::Struct{{"left", Value(10)}, {"right", Value(32)}});
        });
    (void)registry_.register_operation(
        "Math", "Add", [](const soap::Struct& params) -> Result<Value> {
          std::int64_t sum = 0;
          for (const auto& [name, value] : params) sum += value.as_int();
          return Value(sum);
        });
    (void)registry_.register_operation(
        "Math", "Fail", [](const soap::Struct&) -> Result<Value> {
          return Error(ErrorCode::kInternal, "deliberate");
        });
  }
  ServiceRegistry registry_;
};

TEST_F(PlanExecutionTest, ChainsResults) {
  RemotePlan plan;
  plan.step("Math", "MakePair")
      .step("Math", "Add",
            {PlanArg::ref("a", 0, "left"), PlanArg::ref("b", 0, "right")});
  auto outcomes = execute_plan(plan, registry_);
  ASSERT_EQ(outcomes.size(), 2u);
  ASSERT_TRUE(outcomes[1].outcome.ok());
  EXPECT_EQ(outcomes[1].outcome.value().as_int(), 42);
}

TEST_F(PlanExecutionTest, DependencyOnFailedStepFaultsWithoutRunning) {
  RemotePlan plan;
  plan.step("Math", "Fail")
      .step("Math", "Add", {PlanArg::ref("a", 0)})
      .step("Math", "Add", {PlanArg::value("a", Value(1))});
  auto outcomes = execute_plan(plan, registry_);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[0].outcome.ok());
  ASSERT_FALSE(outcomes[1].outcome.ok());
  EXPECT_NE(outcomes[1].outcome.error().message().find("failed step 0"),
            std::string::npos);
  // Independent step 2 still executed.
  ASSERT_TRUE(outcomes[2].outcome.ok());
  EXPECT_EQ(outcomes[2].outcome.value().as_int(), 1);
}

TEST_F(PlanExecutionTest, BadPathFaultsTheDependentStepOnly) {
  RemotePlan plan;
  plan.step("Math", "MakePair")
      .step("Math", "Add", {PlanArg::ref("a", 0, "no_such_field")});
  auto outcomes = execute_plan(plan, registry_);
  EXPECT_TRUE(outcomes[0].outcome.ok());
  ASSERT_FALSE(outcomes[1].outcome.ok());
  EXPECT_NE(outcomes[1].outcome.error().message().find("no_such_field"),
            std::string::npos);
}

// --- end to end ------------------------------------------------------------------

TEST(PlanEndToEndTest, TravelTailSequenceInOneMessage) {
  net::SimTransport transport;
  ServiceRegistry registry;
  auto airlines = services::make_demo_airlines(/*seed=*/5);
  for (auto& airline : airlines) airline->register_with(registry);
  services::CreditCardService card("CardGate", /*seed=*/5);
  card.register_with(registry);

  SpiServer server(transport, net::Endpoint{"server", 80}, registry);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport, server.endpoint());

  // Reserve -> Authorize(price from step 0) -> Confirm(ids from 0 and 1):
  // three dependent calls, ONE SOAP message.
  RemotePlan plan;
  plan.step("NimbusAir", "Reserve",
            {PlanArg::value("flight_id", Value("NB-9"))})
      .step("CardGate", "Authorize",
            {PlanArg::value("card_number", Value("4111111111111111")),
             PlanArg::ref("amount_cents", 0, "price_cents")})
      .step("NimbusAir", "ConfirmReservation",
            {PlanArg::ref("reservation_id", 0, "reservation_id"),
             PlanArg::ref("authorization_id", 1, "authorization_id")});

  auto outcomes = client.execute_plan(plan);
  ASSERT_TRUE(outcomes.ok()) << outcomes.error().to_string();
  ASSERT_EQ(outcomes.value().size(), 3u);
  for (const auto& outcome : outcomes.value()) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }
  EXPECT_EQ(outcomes.value()[2].value(), Value(true));

  // Server-side effects: seat held and confirmed, payment authorized.
  services::Airline* nimbus = airlines[2].get();
  EXPECT_EQ(nimbus->confirmed_reservations(), 1u);
  EXPECT_EQ(nimbus->seats_available("NB-9"), 1);
  EXPECT_EQ(card.authorized_total("4111111111111111"), 72'300);

  // One HTTP request carried all three invocations.
  EXPECT_EQ(server.stats().http_requests, 1u);
  EXPECT_EQ(server.stats().dispatcher.calls_dispatched, 3u);
  server.stop();
}

TEST(PlanEndToEndTest, InvalidPlanRejectedClientSide) {
  net::SimTransport transport;
  ServiceRegistry registry;
  SpiServer server(transport, net::Endpoint{"server", 80}, registry);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport, server.endpoint());

  RemotePlan bad;  // empty
  auto outcomes = client.execute_plan(bad);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(server.stats().http_requests, 0u);  // never hit the wire
  server.stop();
}

TEST(PlanEndToEndTest, CoupledServerExecutesPlansToo) {
  net::SimTransport transport;
  ServiceRegistry registry;
  (void)registry.register_operation(
      "S", "Id", [](const soap::Struct& params) -> Result<Value> {
        return params.empty() ? Value(0) : params[0].second;
      });
  ServerOptions options;
  options.staged = false;
  SpiServer server(transport, net::Endpoint{"server", 80}, registry,
                   options);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport, server.endpoint());

  RemotePlan plan;
  plan.step("S", "Id", {PlanArg::value("x", Value(7))})
      .step("S", "Id", {PlanArg::ref("x", 0)});
  auto outcomes = client.execute_plan(plan);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_EQ(outcomes.value()[1].value().as_int(), 7);
  server.stop();
}

}  // namespace
}  // namespace spi::core
