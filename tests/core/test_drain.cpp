// Graceful drain: SpiServer::stop() stops accepting, lets in-flight
// requests finish within drain_timeout, reports "draining" on /healthz,
// and answers new work with a retryable Shutdown fault instead of
// executing it.
#include <gtest/gtest.h>

#include <thread>

#include "core/client.hpp"
#include "core/server.hpp"
#include "http/message.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"
#include "soap/envelope.hpp"

namespace spi::core {
namespace {

using soap::Value;

class DrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    ServerOptions options;
    options.drain_timeout = std::chrono::seconds(2);
    server_ = std::make_unique<SpiServer>(transport_,
                                          net::Endpoint{"server", 80},
                                          registry_, options);
    ASSERT_TRUE(server_->start().ok());
  }

  /// Pre-established keep-alive connection; usable after the listener
  /// closes (which is exactly the drain window we need to observe).
  std::unique_ptr<net::Connection> open_connection() {
    auto connection = transport_.connect(server_->endpoint());
    EXPECT_TRUE(connection.ok());
    return std::move(connection).value();
  }

  std::string roundtrip(net::Connection& connection, http::Request request) {
    EXPECT_TRUE(connection.send(request.serialize()).ok());
    auto bytes = connection.receive(64 * 1024);
    EXPECT_TRUE(bytes.ok()) << bytes.error().to_string();
    return bytes.ok() ? bytes.value() : std::string();
  }

  net::SimTransport transport_;
  ServiceRegistry registry_;
  std::unique_ptr<SpiServer> server_;
};

TEST_F(DrainTest, InFlightRequestFinishesDuringStop) {
  CallOutcome outcome = Error(ErrorCode::kInternal, "never ran");
  std::thread caller([&] {
    SpiClient client(transport_, server_->endpoint());
    outcome = client.call("EchoService", "Delay",
                          {{"milliseconds", Value(150)}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server_->stop();  // must wait for the Delay, not abort it
  caller.join();
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_int(), 150);
}

TEST_F(DrainTest, DrainWindowReportsDrainingAndShedsNewWork) {
  auto healthz_connection = open_connection();
  auto post_connection = open_connection();

  // Sanity: before the drain the server is healthy.
  http::Request healthz;
  healthz.method = "GET";
  healthz.target = "/healthz";
  std::string before = roundtrip(*healthz_connection, healthz);
  EXPECT_NE(before.find("200"), std::string::npos) << before;

  CallOutcome outcome = Error(ErrorCode::kInternal, "never ran");
  std::thread caller([&] {
    SpiClient client(transport_, server_->endpoint());
    outcome = client.call("EchoService", "Delay",
                          {{"milliseconds", Value(400)}});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread stopper([&] { server_->stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Mid-drain: /healthz flips to 503 "draining" so load balancers stop
  // routing here while in-flight work completes.
  std::string during = roundtrip(*healthz_connection, healthz);
  EXPECT_NE(during.find("503"), std::string::npos) << during;
  EXPECT_NE(during.find("draining"), std::string::npos) << during;

  // Mid-drain: new SPI work is refused with a Shutdown fault — a
  // "not executed" answer the retry layer may safely replay elsewhere.
  http::Request post;
  post.method = "POST";
  post.target = "/spi";
  post.headers.set("Content-Type", "text/xml");
  post.body = soap::build_envelope("<spi:Echo/>");
  std::string refused = roundtrip(*post_connection, post);
  EXPECT_NE(refused.find("503"), std::string::npos) << refused;
  EXPECT_NE(refused.find("Shutdown"), std::string::npos) << refused;

  stopper.join();
  caller.join();
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_int(), 400);
}

TEST_F(DrainTest, DrainGivesUpAtTheTimeout) {
  ServerOptions options;
  options.drain_timeout = std::chrono::milliseconds(100);
  SpiServer bounded(transport_, net::Endpoint{"bounded", 80}, registry_,
                    options);
  ASSERT_TRUE(bounded.start().ok());
  CallOutcome outcome = Error(ErrorCode::kInternal, "never ran");
  double caller_ms = 0.0;
  std::thread caller([&] {
    SpiClient client(transport_, bounded.endpoint());
    Stopwatch stopwatch;
    outcome = client.call("EchoService", "Delay",
                          {{"milliseconds", Value(800)}});
    caller_ms = stopwatch.elapsed_ms();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  bounded.stop();
  caller.join();
  // The 800ms handler cannot finish inside the 100ms drain budget: the
  // drain gives up and the hard stop aborts the connection, so the client
  // learns its fate at ~the drain bound, not after the full handler delay.
  EXPECT_FALSE(outcome.ok());
  EXPECT_LT(caller_ms, 600.0);
}

}  // namespace
}  // namespace spi::core
