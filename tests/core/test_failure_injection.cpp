// Failure injection end to end: refused connects, connections severed
// mid-message, and corrupted bytes must surface as errors at the SPI call
// boundary — never hangs, crashes, or silently wrong results — and must
// not poison the server for subsequent well-behaved clients.
#include <gtest/gtest.h>

#include "benchsupport/workload.hpp"
#include "core/client.hpp"
#include "core/params.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"
#include "support/faulty_transport.hpp"

namespace spi::core {
namespace {

using soap::Value;
using test::FaultPlan;
using test::FaultyTransport;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    server_ = std::make_unique<SpiServer>(inner_,
                                          net::Endpoint{"server", 80},
                                          registry_);
    ASSERT_TRUE(server_->start().ok());
  }

  /// A client whose traffic passes through the fault plan.
  std::unique_ptr<SpiClient> faulty_client(FaultPlan plan) {
    faulty_ = std::make_unique<FaultyTransport>(inner_, plan);
    return std::make_unique<SpiClient>(*faulty_, server_->endpoint());
  }

  /// Sanity probe on the clean transport.
  void expect_server_still_healthy() {
    SpiClient clean(inner_, server_->endpoint());
    auto outcome =
        clean.call("EchoService", "Echo", {{"data", Value("probe")}});
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
    EXPECT_EQ(outcome.value().as_string(), "probe");
  }

  net::SimTransport inner_;
  std::unique_ptr<FaultyTransport> faulty_;
  ServiceRegistry registry_;
  std::unique_ptr<SpiServer> server_;
};

TEST_F(FailureInjectionTest, RefusedConnectSurfacesAndRecovers) {
  FaultPlan plan;
  plan.refuse_connects = 1;
  auto client = faulty_client(plan);

  auto first = client->call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code(), ErrorCode::kConnectionFailed);

  // The very next call (fresh connection) succeeds.
  auto second = client->call("EchoService", "Echo", {{"data", Value("y")}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().as_string(), "y");
}

TEST_F(FailureInjectionTest, SeveredRequestFailsTheCallOnly) {
  FaultPlan plan;
  plan.sever_after_bytes = 100;  // mid-HTTP-headers
  auto client = faulty_client(plan);

  auto outcome = client->call("EchoService", "Echo",
                              {{"data", Value("never arrives")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kConnectionClosed);
  expect_server_still_healthy();
}

TEST_F(FailureInjectionTest, SeveredPackedBatchReplicatesErrorToAllCalls) {
  FaultPlan plan;
  plan.sever_after_bytes = 200;
  auto client = faulty_client(plan);

  auto calls = bench::make_echo_calls(5, 100, /*seed=*/1);
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 5u);
  for (const auto& outcome : outcomes) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code(), ErrorCode::kConnectionClosed);
  }
  expect_server_still_healthy();
}

TEST_F(FailureInjectionTest, CorruptedEnvelopeByteIsRejectedNotEchoed) {
  // Flip one bit deep in the request body: either the XML becomes
  // malformed (server answers with a Fault / 400) or a payload character
  // changes (detectable by comparing the echo) — silence is not an option.
  FaultPlan plan;
  plan.corrupt_at = 450;
  auto client = faulty_client(plan);

  ServiceCall call = make_call("EchoService", "Echo",
                               {{"data", Value(std::string(200, 'A'))}});
  auto outcome = client->call(call);
  if (outcome.ok()) {
    EXPECT_NE(outcome.value(), *find_param(call.params, "data"))
        << "corruption silently disappeared";
  } else {
    EXPECT_TRUE(outcome.error().code() == ErrorCode::kFault ||
                outcome.error().code() == ErrorCode::kProtocolError)
        << outcome.error().to_string();
  }
  expect_server_still_healthy();
}

TEST_F(FailureInjectionTest, ServerRejectsRawGarbageConnections) {
  // Straight bytes at the server, bypassing HTTP framing entirely.
  for (std::string_view garbage :
       {std::string_view("\x00\x01\x02\x03garbage", 11),
        std::string_view("GET / HTTP/9.9\r\n\r\n"),
        std::string_view("POST / HTTP/1.1\r\nContent-Length: zz\r\n\r\n")}) {
    auto connection = inner_.connect(server_->endpoint());
    ASSERT_TRUE(connection.ok());
    ASSERT_TRUE(connection.value()->send(garbage).ok());
    // Half-close so the server stops waiting for more bytes; it must then
    // answer 400 or close — never hang.
    connection.value()->close();
    auto reply = connection.value()->receive(4096);
    if (reply.ok()) {
      EXPECT_NE(reply.value().find("400"), std::string::npos);
    }
  }
  expect_server_still_healthy();
}

TEST_F(FailureInjectionTest, OversizedRequestRejectedByLimits) {
  ServerOptions options;
  options.http_limits.max_body_bytes = 1024;
  SpiServer small_server(inner_, net::Endpoint{"small", 80}, registry_,
                         options);
  ASSERT_TRUE(small_server.start().ok());
  SpiClient client(inner_, small_server.endpoint());

  auto outcome = client.call("EchoService", "Echo",
                             {{"data", Value(std::string(10'000, 'x'))}});
  ASSERT_FALSE(outcome.ok());
  // The server kills the connection after its 400; the client reports the
  // protocol failure either way.
  EXPECT_TRUE(outcome.error().code() == ErrorCode::kProtocolError ||
              outcome.error().code() == ErrorCode::kConnectionClosed)
      << outcome.error().to_string();

  // A request under the limit is fine.
  auto small = client.call("EchoService", "Echo",
                           {{"data", Value("small enough")}});
  EXPECT_TRUE(small.ok());
  small_server.stop();
}

TEST_F(FailureInjectionTest, ResponseBiggerThanClientLimitFails) {
  ClientOptions options;
  options.http_limits.max_body_bytes = 512;
  SpiClient client(inner_, server_->endpoint(), options);
  auto outcome = client.call("EchoService", "Echo",
                             {{"data", Value(std::string(4'096, 'y'))}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kProtocolError);
}

TEST_F(FailureInjectionTest, MultithreadedStrategyIsolatesPerCallFailures) {
  FaultPlan plan;
  plan.refuse_connects = 3;  // first three connects fail
  auto client = faulty_client(plan);

  auto calls = bench::make_echo_calls(8, 32, /*seed=*/2);
  auto outcomes = client->call_multithreaded(calls);
  ASSERT_EQ(outcomes.size(), 8u);
  size_t failures = 0;
  for (const auto& outcome : outcomes) {
    if (!outcome.ok()) ++failures;
  }
  EXPECT_EQ(failures, 3u);  // exactly the injected refusals
}

}  // namespace
}  // namespace spi::core
