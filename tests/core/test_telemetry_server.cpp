// End-to-end telemetry on SpiServer over SimTransport: the /metrics
// Prometheus scrape, /healthz admission flip, and trace-id propagation
// from client injection through packed fan-out into handler CallContexts
// and back out in the response envelope (DESIGN.md §9).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "benchsupport/workload.hpp"
#include "concurrency/wait_group.hpp"
#include "core/call_context.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "http/connection_pool.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"
#include "telemetry/trace.hpp"

namespace spi::core {
namespace {

using soap::Value;

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override { services::register_echo_service(registry_); }

  http::Response get(const net::Endpoint& server, std::string target) {
    http::HttpClient http(transport_, server);
    http::Request request;
    request.method = "GET";
    request.target = std::move(target);
    auto response = http.send(std::move(request));
    EXPECT_TRUE(response.ok()) << response.error().to_string();
    return response.ok() ? std::move(response).value() : http::Response{};
  }

  net::SimTransport transport_;
  ServiceRegistry registry_;
};

TEST_F(TelemetryServerTest, MetricsScrapeCoversEveryLayer) {
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  ASSERT_TRUE(server.start().ok());

  // A client-side connection pool bound into the same registry: one
  // fresh connect, one reuse.
  http::ConnectionPool pool(transport_, 4);
  pool.bind_metrics(server.metrics(), "client");
  {
    auto lease = pool.acquire(server.endpoint());
    ASSERT_TRUE(lease.ok());
  }
  {
    auto lease = pool.acquire(server.endpoint());
    ASSERT_TRUE(lease.ok());
  }

  // Exactly one packed message carrying 4 calls.
  SpiClient client(transport_, server.endpoint());
  auto calls = bench::make_echo_calls(4, 16, /*seed=*/7);
  EXPECT_EQ(bench::count_echo_errors(calls, client.call_packed(calls)), 0u);

  http::Response scrape = get(server.endpoint(), "/metrics");
  EXPECT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.headers.get("Content-Type")
                .value_or("")
                .find("text/plain"),
            std::string::npos);
  const std::string& text = scrape.body;

  // Stage spans: one message went through parse/execute/assemble.
  EXPECT_NE(text.find("# TYPE spi_server_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("spi_server_stage_seconds_count{stage=\"parse\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("spi_server_stage_seconds_count{stage=\"execute\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("spi_server_stage_seconds_count{stage=\"assemble\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("spi_http_read_seconds_count "), std::string::npos);

  // Fan-out width: one observation of 4 (lands in the le=5 ladder rung).
  EXPECT_NE(text.find("spi_server_fanout_width_bucket{le=\"5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_server_fanout_width_count 1\n"),
            std::string::npos);

  // Stage pools: queue depth and worker gauges for both stages.
  EXPECT_NE(text.find("spi_pool_queue_depth{pool=\"application\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_pool_queue_depth{pool=\"http-protocol\"} "),
            std::string::npos);
  EXPECT_NE(text.find("spi_pool_active_workers{pool=\"application\"} "),
            std::string::npos);
  EXPECT_NE(
      text.find("spi_pool_tasks_completed_total{pool=\"application\"} 4\n"),
      std::string::npos);

  // Dispatcher/assembler registry-backed views.
  EXPECT_NE(text.find("spi_dispatcher_calls_total{side=\"server\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_assembler_envelopes_total{side=\"server\"} 1\n"),
            std::string::npos);

  // Client connection pool bound into the server's registry.
  EXPECT_NE(text.find("spi_httppool_created_total{pool=\"client\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_httppool_reused_total{pool=\"client\"} 1\n"),
            std::string::npos);

  // Wire bytes flowed, admission never rejected, nothing in flight now.
  EXPECT_NE(text.find("spi_net_bytes_sent_total "), std::string::npos);
  EXPECT_EQ(text.find("spi_net_bytes_sent_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("spi_net_bytes_received_total "), std::string::npos);
  EXPECT_NE(text.find("spi_server_admission_rejections_total 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_server_in_flight 0\n"), std::string::npos);
}

TEST_F(TelemetryServerTest, HealthzFlipsTo503WhileSaturated) {
  CountdownLatch entered(1);
  CountdownLatch release(1);
  ASSERT_TRUE(registry_
                  .register_operation(
                      "BlockService", "Block",
                      [&](const soap::Struct&) -> Result<Value> {
                        entered.count_down();
                        release.wait();
                        return Value(1);
                      })
                  .ok());

  ServerOptions options;
  options.max_concurrent_messages = 1;
  options.protocol_threads = 4;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  http::Response healthy = get(server.endpoint(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(healthy.body.find("\"max_concurrent_messages\":1"),
            std::string::npos);

  // Occupy the single admission slot with a handler parked on a latch.
  std::jthread blocked([&] {
    SpiClient client(transport_, server.endpoint());
    EXPECT_TRUE(client.call("BlockService", "Block", {}).ok());
  });
  entered.wait();

  http::Response saturated = get(server.endpoint(), "/healthz");
  EXPECT_EQ(saturated.status, 503);
  EXPECT_NE(saturated.body.find("\"status\":\"overloaded\""),
            std::string::npos);
  EXPECT_NE(saturated.body.find("\"in_flight\":1"), std::string::npos);

  // A message arriving now is shed, and the rejection shows in /metrics.
  SpiClient client(transport_, server.endpoint());
  auto shed = client.call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code(), ErrorCode::kFault);
  EXPECT_NE(get(server.endpoint(), "/metrics")
                .body.find("spi_server_admission_rejections_total 1\n"),
            std::string::npos);

  release.count_down();
  blocked.join();

  http::Response recovered = get(server.endpoint(), "/healthz");
  EXPECT_EQ(recovered.status, 200);
  EXPECT_NE(recovered.body.find("\"admission_rejections\":1"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, HardeningInstrumentsAreExposed) {
  ServerOptions options;
  options.envelope_limits.max_fanout = 2;
  AdaptiveLimiterOptions adaptive;
  adaptive.initial_limit = 4;
  options.adaptive_limit = adaptive;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  // One call over the fan-out cap -> limit="fan-out" ticks once.
  SpiClient client(transport_, server.endpoint());
  auto calls = bench::make_echo_calls(3, 8, /*seed=*/5);
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[2].ok());

  // A hostile over-deep request (past the default 256 bound) -> a single
  // limit="depth" tick (HTTP 400).
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 300; ++i) deep += "</a>";
  http::HttpClient http(transport_, server.endpoint());
  auto rejected = http.post("/spi", std::move(deep), "text/xml");
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected.value().status, 400);

  const std::string text = get(server.endpoint(), "/metrics").body;
  // Shed accounting by reason, all zero on this healthy run...
  EXPECT_NE(text.find("spi_admission_shed_total{reason=\"draining\"} 0\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("spi_admission_shed_total{reason=\"concurrency-limit\"} 0\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("spi_admission_shed_total{reason=\"adaptive-limit\"} 0\n"),
      std::string::npos);
  EXPECT_NE(text.find("spi_admission_shed_total{reason=\"queue-full\"} 0\n"),
            std::string::npos);
  // ...limit rejections attributed to their governed dimension...
  EXPECT_NE(text.find("spi_limit_rejections_total{limit=\"fan-out\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_limit_rejections_total{limit=\"depth\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_limit_rejections_total{limit=\"tokens\"} 0\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("spi_limit_rejections_total{limit=\"body-entries\"} 0\n"),
      std::string::npos);
  // ...and the adaptive limiter's current learned limit as a gauge.
  EXPECT_NE(text.find("spi_admission_adaptive_limit 4\n"), std::string::npos)
      << text;

  EXPECT_EQ(server.stats().limit_rejections, 1u);  // depth (whole message)
  EXPECT_EQ(server.stats().dispatcher.limit_rejected_calls, 1u);  // fan-out
}

TEST_F(TelemetryServerTest, PackedFanOutSharesOneTraceAcrossCallContexts) {
  struct Capture {
    std::string trace_id;
    std::string parent_id;
    std::uint32_t call_id = 0;
    size_t fanout = 0;
  };
  std::mutex mutex;
  std::vector<Capture> captures;
  ASSERT_TRUE(registry_
                  .register_operation(
                      "TraceService", "Capture",
                      [&](const soap::Struct&) -> Result<Value> {
                        Capture capture;
                        if (const CallContext* context =
                                current_call_context()) {
                          capture.trace_id = context->trace.trace_id;
                          capture.parent_id = context->trace.parent_id;
                          capture.call_id = context->call_id;
                          capture.fanout = context->fanout;
                        }
                        std::lock_guard lock(mutex);
                        captures.push_back(std::move(capture));
                        return Value(1);
                      })
                  .ok());

  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport_, server.endpoint());

  constexpr size_t kFanout = 8;
  std::vector<ServiceCall> calls;
  for (size_t i = 0; i < kFanout; ++i) {
    calls.push_back(make_call("TraceService", "Capture", {}));
  }
  auto outcomes = client.call_packed(calls);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }

  std::lock_guard lock(mutex);
  ASSERT_EQ(captures.size(), kFanout);
  // One message, one trace: every concurrently-executing sibling saw the
  // same 32-hex id the client injected.
  EXPECT_EQ(captures.front().trace_id.size(), 32u);
  std::set<std::uint32_t> ids;
  for (const Capture& capture : captures) {
    EXPECT_EQ(capture.trace_id, captures.front().trace_id);
    EXPECT_EQ(capture.fanout, kFanout);
    ids.insert(capture.call_id);
  }
  EXPECT_EQ(ids.size(), kFanout);  // distinct call ids 0..M-1
}

TEST_F(TelemetryServerTest, ResponseEnvelopeEchoesTheRequestTrace) {
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  ASSERT_TRUE(server.start().ok());

  // Hand-roll the request so the injected trace is known exactly.
  telemetry::TraceContext trace = telemetry::TraceContext::generate();
  Assembler assembler(nullptr, PackCostModel{});
  auto calls = bench::make_echo_calls(3, 8, /*seed=*/11);
  std::string envelope;
  {
    telemetry::TraceScope scope(trace);
    envelope = assembler.assemble_request(calls, PackMode::kPacked);
  }
  EXPECT_NE(envelope.find("<spi:TraceId>" + trace.trace_id),
            std::string::npos);

  http::HttpClient http(transport_, server.endpoint());
  auto response = http.post("/spi", std::move(envelope));
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);

  auto parsed = soap::Envelope::parse(response.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  auto echoed =
      telemetry::TraceContext::from_header_blocks(parsed.value().header_blocks);
  ASSERT_TRUE(echoed.has_value());
  EXPECT_EQ(echoed->trace_id, trace.trace_id);
  EXPECT_EQ(echoed->parent_id, trace.parent_id);
}

TEST_F(TelemetryServerTest, TracePropagationCanBeDisabled) {
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  ASSERT_TRUE(server.start().ok());

  ClientOptions options;
  options.trace_propagation = false;
  SpiClient client(transport_, server.endpoint(), options);
  auto outcome = client.call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_TRUE(outcome.ok());
}

}  // namespace
}  // namespace spi::core
