// Receive timeouts end to end: a server that accepts a request and then
// stalls must produce kTimeout at the caller, on both transports, without
// wedging the client or the server.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "services/echo.hpp"

namespace spi::core {
namespace {

using soap::Value;

template <typename TransportT>
class TimeoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    server_ = std::make_unique<SpiServer>(transport_, listen_endpoint(),
                                          registry_);
    ASSERT_TRUE(server_->start().ok());
  }

  net::Endpoint listen_endpoint() {
    if constexpr (std::is_same_v<TransportT, net::TcpTransport>) {
      return net::Endpoint{"127.0.0.1", 0};
    } else {
      return net::Endpoint{"server", 80};
    }
  }

  TransportT transport_;
  ServiceRegistry registry_;
  std::unique_ptr<SpiServer> server_;
};

using Transports = ::testing::Types<net::SimTransport, net::TcpTransport>;
TYPED_TEST_SUITE(TimeoutTest, Transports);

TYPED_TEST(TimeoutTest, SlowHandlerTriggersClientTimeout) {
  ClientOptions options;
  options.receive_timeout = std::chrono::milliseconds(50);
  SpiClient client(this->transport_, this->server_->endpoint(), options);

  Stopwatch watch;
  auto outcome = client.call("EchoService", "Delay",
                             {{"milliseconds", Value(500)}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kTimeout)
      << outcome.error().to_string();
  EXPECT_LT(watch.elapsed_ms(), 400.0);  // did not wait for the handler
}

TYPED_TEST(TimeoutTest, FastCallsUnaffectedByTimeout) {
  ClientOptions options;
  options.receive_timeout = std::chrono::milliseconds(500);
  SpiClient client(this->transport_, this->server_->endpoint(), options);
  auto outcome = client.call("EchoService", "Echo", {{"data", Value("ok")}});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "ok");
}

TYPED_TEST(TimeoutTest, ClientRecoversAfterTimeout) {
  ClientOptions options;
  options.receive_timeout = std::chrono::milliseconds(50);
  SpiClient client(this->transport_, this->server_->endpoint(), options);
  auto slow = client.call("EchoService", "Delay",
                          {{"milliseconds", Value(300)}});
  ASSERT_FALSE(slow.ok());
  // The next call goes out on a fresh connection and succeeds.
  auto fast = client.call("EchoService", "Echo", {{"data", Value("back")}});
  ASSERT_TRUE(fast.ok()) << fast.error().to_string();
}

TYPED_TEST(TimeoutTest, PackedBatchTimesOutAsAWhole) {
  ClientOptions options;
  options.receive_timeout = std::chrono::milliseconds(50);
  SpiClient client(this->transport_, this->server_->endpoint(), options);
  std::vector<ServiceCall> calls;
  calls.push_back(make_call("EchoService", "Echo", {{"data", Value("x")}}));
  calls.push_back(
      make_call("EchoService", "Delay", {{"milliseconds", Value(400)}}));
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& outcome : outcomes) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code(), ErrorCode::kTimeout);
  }
}

TEST(TimeoutValidationTest, NegativeTimeoutRejected) {
  net::SimTransport transport;
  auto listener = transport.listen(net::Endpoint{"h", 1});
  ASSERT_TRUE(listener.ok());
  auto connection = transport.connect(net::Endpoint{"h", 1});
  ASSERT_TRUE(connection.ok());
  EXPECT_FALSE(
      connection.value()->set_receive_timeout(Duration(-1)).ok());
  EXPECT_TRUE(connection.value()->set_receive_timeout(Duration(0)).ok());
}

}  // namespace
}  // namespace spi::core
