// The Axis-style handler chain (§3.6 integration slot) and SEDA admission
// control on SpiServer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "benchsupport/workload.hpp"
#include "core/client.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/echo.hpp"

namespace spi::core {
namespace {

using soap::Value;

// --- HandlerChain unit behaviour ---------------------------------------------

class RecordingHandler final : public Handler {
 public:
  RecordingHandler(std::string name, std::vector<std::string>* log,
                   Status request_result = Status())
      : name_(std::move(name)),
        log_(log),
        request_result_(std::move(request_result)) {}

  std::string_view name() const override { return name_; }
  Status on_request(const HandlerContext&) override {
    log_->push_back(name_ + ":request");
    return request_result_;
  }
  void on_response(const HandlerContext&) override {
    log_->push_back(name_ + ":response");
  }

 private:
  std::string name_;
  std::vector<std::string>* log_;
  Status request_result_;
};

TEST(HandlerChainTest, RequestOrderForwardResponseOrderReverse) {
  std::vector<std::string> log;
  HandlerChain chain;
  chain.add(std::make_shared<RecordingHandler>("a", &log));
  chain.add(std::make_shared<RecordingHandler>("b", &log));

  wire::ParsedRequest request;
  HandlerContext context;
  context.request = &request;
  ASSERT_TRUE(chain.run_request(context).ok());
  chain.run_response(context);
  EXPECT_EQ(log, (std::vector<std::string>{"a:request", "b:request",
                                           "b:response", "a:response"}));
}

TEST(HandlerChainTest, FirstVetoWinsAndIsAttributed) {
  std::vector<std::string> log;
  HandlerChain chain;
  chain.add(std::make_shared<RecordingHandler>("first", &log));
  chain.add(std::make_shared<RecordingHandler>(
      "vetoer", &log, Status(ErrorCode::kInvalidArgument, "nope")));
  chain.add(std::make_shared<RecordingHandler>("never", &log));

  wire::ParsedRequest request;
  HandlerContext context;
  context.request = &request;
  Status status = chain.run_request(context);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("vetoer"), std::string::npos);
  EXPECT_EQ(log, (std::vector<std::string>{"first:request",
                                           "vetoer:request"}));
}

TEST(HandlerChainTest, NullHandlerRejected) {
  HandlerChain chain;
  EXPECT_THROW(chain.add(nullptr), SpiError);
}

// --- end-to-end on SpiServer ---------------------------------------------------

class HandlerServerTest : public ::testing::Test {
 protected:
  void SetUp() override { services::register_echo_service(registry_); }

  net::SimTransport transport_;
  ServiceRegistry registry_;
};

TEST_F(HandlerServerTest, CallQuotaVetoesOversizedBatches) {
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  server.handlers().add(make_call_quota_handler(4));
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport_, server.endpoint());

  auto small = bench::make_echo_calls(4, 10, /*seed=*/1);
  EXPECT_EQ(bench::count_echo_errors(small, client.call_packed(small)), 0u);

  auto large = bench::make_echo_calls(5, 10, /*seed=*/2);
  auto outcomes = client.call_packed(large);
  for (const auto& outcome : outcomes) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code(), ErrorCode::kFault);
    EXPECT_NE(outcome.error().message().find("limit is 4"),
              std::string::npos);
  }
  // No quota violation executed anything.
  EXPECT_EQ(server.stats().dispatcher.calls_dispatched, 4u);
}

TEST_F(HandlerServerTest, AuditHandlerCountsTraffic) {
  auto audit = std::make_shared<AuditStats>();
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  server.handlers().add(make_audit_handler(audit));
  ASSERT_TRUE(server.start().ok());
  SpiClient client(transport_, server.endpoint());

  auto calls = bench::make_echo_calls(3, 10, /*seed=*/3);
  (void)client.call_packed(calls);
  (void)client.call("EchoService", "Echo", {{"data", Value("x")}});
  (void)client.call("EchoService", "NoSuchOp", {});

  EXPECT_EQ(audit->messages.load(), 3u);
  EXPECT_EQ(audit->calls.load(), 5u);
  EXPECT_EQ(audit->faults.load(), 1u);
}

TEST_F(HandlerServerTest, AdmissionControlSheds503UnderOverload) {
  ServerOptions options;
  options.max_concurrent_messages = 2;
  options.protocol_threads = 16;
  options.application_threads = 16;
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_,
                   options);
  ASSERT_TRUE(server.start().ok());

  // 8 concurrent slow calls against a 2-message admission bound.
  std::atomic<int> ok_count{0}, shed_count{0};
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&] {
        SpiClient client(transport_, server.endpoint());
        auto outcome = client.call("EchoService", "Delay",
                                   {{"milliseconds", Value(50)}});
        if (outcome.ok()) {
          ++ok_count;
        } else {
          EXPECT_EQ(outcome.error().code(), ErrorCode::kFault);
          EXPECT_NE(outcome.error().message().find("concurrency limit"),
                    std::string::npos);
          ++shed_count;
        }
      });
    }
  }
  EXPECT_EQ(ok_count.load() + shed_count.load(), 8);
  EXPECT_GE(ok_count.load(), 2);
  EXPECT_GE(shed_count.load(), 1);
  EXPECT_EQ(server.stats().admission_rejections,
            static_cast<std::uint64_t>(shed_count.load()));

  // After the burst the server accepts work normally again.
  SpiClient client(transport_, server.endpoint());
  auto outcome = client.call("EchoService", "Echo", {{"data", Value("ok")}});
  ASSERT_TRUE(outcome.ok());
}

TEST_F(HandlerServerTest, AdmissionUnlimitedByDefault) {
  SpiServer server(transport_, net::Endpoint{"server", 80}, registry_);
  ASSERT_TRUE(server.start().ok());
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < 12; ++t) {
      clients.emplace_back([&] {
        SpiClient client(transport_, server.endpoint());
        if (!client
                 .call("EchoService", "Delay", {{"milliseconds", Value(10)}})
                 .ok()) {
          ++failures;
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().admission_rejections, 0u);
}

}  // namespace
}  // namespace spi::core
