// The incremental HTTP parser, including the property that parsing is
// invariant under how the byte stream is sliced (parameterized feed sizes).
#include <gtest/gtest.h>

#include "http/parser.hpp"

namespace spi::http {
namespace {

constexpr std::string_view kSimpleRequest =
    "POST /spi HTTP/1.1\r\n"
    "Host: localhost\r\n"
    "Content-Type: text/xml\r\n"
    "Content-Length: 11\r\n"
    "\r\n"
    "hello world";

constexpr std::string_view kSimpleResponse =
    "HTTP/1.1 200 OK\r\n"
    "Content-Length: 2\r\n"
    "\r\n"
    "ok";

TEST(HttpParserTest, ParsesCompleteRequest) {
  MessageParser parser(MessageParser::Mode::kRequest);
  parser.feed(kSimpleRequest);
  auto request = parser.poll_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->target, "/spi");
  EXPECT_EQ(request->headers.get("content-type"), "text/xml");
  EXPECT_EQ(request->body, "hello world");
  EXPECT_FALSE(parser.poll_request().has_value());
  EXPECT_FALSE(parser.failed());
}

TEST(HttpParserTest, ParsesCompleteResponse) {
  MessageParser parser(MessageParser::Mode::kResponse);
  parser.feed(kSimpleResponse);
  auto response = parser.poll_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->reason, "OK");
  EXPECT_EQ(response->body, "ok");
}

TEST(HttpParserTest, WrongModePollThrows) {
  MessageParser parser(MessageParser::Mode::kRequest);
  EXPECT_THROW(parser.poll_response(), SpiError);
}

/// Feed-size invariance: the parse result must not depend on slicing.
class HttpParserFeedSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HttpParserFeedSizeTest, RequestInvariantUnderSlicing) {
  MessageParser parser(MessageParser::Mode::kRequest);
  const size_t chunk = GetParam();
  for (size_t offset = 0; offset < kSimpleRequest.size(); offset += chunk) {
    parser.feed(kSimpleRequest.substr(offset, chunk));
  }
  auto request = parser.poll_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "hello world");
  EXPECT_EQ(request->headers.size(), 3u);
}

TEST_P(HttpParserFeedSizeTest, ChunkedBodyInvariantUnderSlicing) {
  constexpr std::string_view kChunked =
      "HTTP/1.1 200 OK\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "4\r\nWiki\r\n"
      "6\r\npedia \r\n"
      "b;ext=1\r\nin chunks..\r\n"
      "0\r\n"
      "X-Trailer: v\r\n"
      "\r\n";
  MessageParser parser(MessageParser::Mode::kResponse);
  const size_t chunk = GetParam();
  for (size_t offset = 0; offset < kChunked.size(); offset += chunk) {
    parser.feed(kChunked.substr(offset, chunk));
    (void)parser.poll_response();  // polling mid-stream must be harmless
  }
  // Note: poll may have already extracted it mid-loop; re-feed approach:
  MessageParser fresh(MessageParser::Mode::kResponse);
  fresh.feed(kChunked);
  auto response = fresh.poll_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->body, "Wikipedia in chunks..");
}

INSTANTIATE_TEST_SUITE_P(FeedSizes, HttpParserFeedSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 64, 4096));

TEST(HttpParserTest, PipelinedRequestsOnOneConnection) {
  MessageParser parser(MessageParser::Mode::kRequest);
  std::string two;
  two += kSimpleRequest;
  two += "GET /next HTTP/1.1\r\nHost: h\r\n\r\n";
  parser.feed(two);
  auto first = parser.poll_request();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->target, "/spi");
  auto second = parser.poll_request();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->method, "GET");
  EXPECT_EQ(second->target, "/next");
  EXPECT_TRUE(second->body.empty());
}

TEST(HttpParserTest, LeadingCrlfBetweenMessagesTolerated) {
  MessageParser parser(MessageParser::Mode::kRequest);
  parser.feed("\r\n\r\nGET / HTTP/1.1\r\nHost: h\r\n\r\n");
  ASSERT_TRUE(parser.poll_request().has_value());
}

TEST(HttpParserTest, ZeroContentLength) {
  MessageParser parser(MessageParser::Mode::kRequest);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
  auto request = parser.poll_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpParserTest, Http10ImpliesConnectionClose) {
  MessageParser parser(MessageParser::Mode::kRequest);
  parser.feed("GET / HTTP/1.0\r\n\r\n");
  auto request = parser.poll_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_FALSE(request->keep_alive());
}

TEST(HttpParserTest, IncompleteMessageReturnsNullopt) {
  MessageParser parser(MessageParser::Mode::kRequest);
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 14\r\n\r\nhalf");
  EXPECT_FALSE(parser.poll_request().has_value());
  EXPECT_FALSE(parser.failed());
  EXPECT_TRUE(parser.mid_message());
  parser.feed("otherhalf!");
  auto request = parser.poll_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "halfotherhalf!");
}

// --- framing errors -----------------------------------------------------------

Error feed_and_fail(MessageParser::Mode mode, std::string_view bytes,
                    ParserLimits limits = {}) {
  MessageParser parser(mode, limits);
  parser.feed(bytes);
  if (mode == MessageParser::Mode::kRequest) {
    EXPECT_FALSE(parser.poll_request().has_value());
  } else {
    EXPECT_FALSE(parser.poll_response().has_value());
  }
  EXPECT_TRUE(parser.failed());
  return parser.failed() ? parser.error() : Error(ErrorCode::kOk, "");
}

TEST(HttpParserErrorTest, MalformedRequestLine) {
  feed_and_fail(MessageParser::Mode::kRequest, "NONSENSE\r\n\r\n");
  feed_and_fail(MessageParser::Mode::kRequest, "GET /\r\n\r\n");
  feed_and_fail(MessageParser::Mode::kRequest,
                "GET / HTTP/2.0\r\n\r\n");
}

TEST(HttpParserErrorTest, MalformedStatusLine) {
  feed_and_fail(MessageParser::Mode::kResponse, "HTTP/1.1 xyz Bad\r\n\r\n");
  feed_and_fail(MessageParser::Mode::kResponse, "HTTP/1.1 99 Low\r\n\r\n");
  feed_and_fail(MessageParser::Mode::kResponse, "NOTHTTP 200 OK\r\n\r\n");
}

TEST(HttpParserErrorTest, BadHeaderLine) {
  feed_and_fail(MessageParser::Mode::kRequest,
                "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
  feed_and_fail(MessageParser::Mode::kRequest,
                "GET / HTTP/1.1\r\n: empty-name\r\n\r\n");
  feed_and_fail(MessageParser::Mode::kRequest,
                "GET / HTTP/1.1\r\nSpaced Name: v\r\n\r\n");
}

TEST(HttpParserErrorTest, BadContentLength) {
  feed_and_fail(MessageParser::Mode::kRequest,
                "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n");
}

TEST(HttpParserErrorTest, ConflictingFraming) {
  Error error = feed_and_fail(
      MessageParser::Mode::kRequest,
      "POST / HTTP/1.1\r\nContent-Length: 3\r\n"
      "Transfer-Encoding: chunked\r\n\r\n");
  EXPECT_NE(error.message().find("both"), std::string::npos);
}

TEST(HttpParserErrorTest, UnsupportedTransferEncoding) {
  feed_and_fail(MessageParser::Mode::kRequest,
                "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
}

TEST(HttpParserErrorTest, BadChunkSize) {
  feed_and_fail(MessageParser::Mode::kResponse,
                "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                "zz\r\n");
}

TEST(HttpParserErrorTest, ChunkDataMissingCrlf) {
  feed_and_fail(MessageParser::Mode::kResponse,
                "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                "2\r\nabXX0\r\n\r\n");
}

TEST(HttpParserErrorTest, HeaderSizeLimitEnforced) {
  ParserLimits limits;
  limits.max_header_bytes = 64;
  Error error = feed_and_fail(
      MessageParser::Mode::kRequest,
      "GET / HTTP/1.1\r\nX-Big: " + std::string(200, 'x') + "\r\n\r\n",
      limits);
  EXPECT_EQ(error.code(), ErrorCode::kProtocolError);
}

TEST(HttpParserErrorTest, BodySizeLimitEnforced) {
  ParserLimits limits;
  limits.max_body_bytes = 8;
  feed_and_fail(MessageParser::Mode::kRequest,
                "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789",
                limits);
}

TEST(HttpParserErrorTest, ChunkedBodyLimitEnforced) {
  ParserLimits limits;
  limits.max_body_bytes = 4;
  feed_and_fail(MessageParser::Mode::kResponse,
                "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                "8\r\nabcdefgh\r\n0\r\n\r\n",
                limits);
}

TEST(HttpParserErrorTest, FeedAfterFailureIsIgnored) {
  MessageParser parser(MessageParser::Mode::kRequest);
  parser.feed("BAD\r\n\r\n");
  (void)parser.poll_request();
  ASSERT_TRUE(parser.failed());
  parser.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(parser.poll_request().has_value());
  EXPECT_TRUE(parser.failed());
}

TEST(AcceptEncodingTest, SimpleListKeepsOrderAtDefaultQ) {
  auto entries = parse_accept_encoding("bxml, deflate, identity");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "bxml");
  EXPECT_EQ(entries[1].name, "deflate");
  EXPECT_EQ(entries[2].name, "identity");
  for (const auto& entry : entries) EXPECT_DOUBLE_EQ(entry.q, 1.0);
}

TEST(AcceptEncodingTest, SortsByDescendingQWithStableTies) {
  auto entries =
      parse_accept_encoding("identity;q=0.2, bxml;q=0.8, deflate;q=0.8");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "bxml");  // ties keep header order
  EXPECT_EQ(entries[1].name, "deflate");
  EXPECT_EQ(entries[2].name, "identity");
}

TEST(AcceptEncodingTest, ToleratesWhitespaceAndLowercasesTokens) {
  auto entries = parse_accept_encoding("  DEFLATE ;  q=0.5 ,\tBxml  ");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "bxml");
  EXPECT_EQ(entries[1].name, "deflate");
  EXPECT_DOUBLE_EQ(entries[1].q, 0.5);
}

TEST(AcceptEncodingTest, QZeroMeansRefusedAndIsDropped) {
  auto entries = parse_accept_encoding("identity;q=0, deflate;q=0.000");
  EXPECT_TRUE(entries.empty());
}

TEST(AcceptEncodingTest, MalformedMembersAreDroppedNotFatal) {
  auto entries =
      parse_accept_encoding("deflate;q=banana, ;q=1, bxml, =0.5, ,");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "bxml");
}

TEST(AcceptEncodingTest, UnknownParametersAreIgnored) {
  auto entries = parse_accept_encoding("deflate;level=9;q=0.5");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "deflate");
  EXPECT_DOUBLE_EQ(entries[0].q, 0.5);
}

TEST(AcceptEncodingTest, WildcardIsAnOrdinaryEntry) {
  auto entries = parse_accept_encoding("*;q=0.1, deflate");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "deflate");
  EXPECT_EQ(entries[1].name, "*");
}

TEST(AcceptEncodingTest, EmptyValueYieldsNoEntries) {
  EXPECT_TRUE(parse_accept_encoding("").empty());
  EXPECT_TRUE(parse_accept_encoding("   ").empty());
}

}  // namespace
}  // namespace spi::http
