#include <gtest/gtest.h>

#include "http/message.hpp"

namespace spi::http {
namespace {

TEST(HeadersTest, LookupIsCaseInsensitive) {
  Headers headers;
  headers.add("Content-Type", "text/xml");
  EXPECT_EQ(headers.get("content-type"), "text/xml");
  EXPECT_EQ(headers.get("CONTENT-TYPE"), "text/xml");
  EXPECT_FALSE(headers.get("content-length").has_value());
}

TEST(HeadersTest, SetReplacesAllValues) {
  Headers headers;
  headers.add("X-Multi", "a");
  headers.add("x-multi", "b");
  EXPECT_EQ(headers.get_all("X-Multi").size(), 2u);
  headers.set("X-MULTI", "c");
  auto all = headers.get_all("x-multi");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], "c");
}

TEST(HeadersTest, RemoveDeletesAllValues) {
  Headers headers;
  headers.add("A", "1");
  headers.add("a", "2");
  headers.add("B", "3");
  headers.remove("A");
  EXPECT_FALSE(headers.contains("a"));
  EXPECT_TRUE(headers.contains("B"));
  EXPECT_EQ(headers.size(), 1u);
}

TEST(HeadersTest, SerializePreservesInsertionOrder) {
  Headers headers;
  headers.add("B", "2");
  headers.add("A", "1");
  std::string out;
  headers.serialize(out);
  EXPECT_EQ(out, "B: 2\r\nA: 1\r\n");
}

TEST(RequestTest, SerializeSetsFraming) {
  Request request;
  request.method = "POST";
  request.target = "/spi";
  request.body = "hello";
  std::string wire = request.serialize();
  EXPECT_NE(wire.find("POST /spi HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Host: localhost\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(RequestTest, SerializeOverridesStaleContentLength) {
  Request request;
  request.headers.set("Content-Length", "999");
  request.body = "ab";
  std::string wire = request.serialize();
  EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("999"), std::string::npos);
}

TEST(RequestTest, KeepAliveDefaultsTrueForHttp11) {
  Request request;
  EXPECT_TRUE(request.keep_alive());
  request.headers.set("Connection", "close");
  EXPECT_FALSE(request.keep_alive());
  request.headers.set("Connection", "keep-alive");
  EXPECT_TRUE(request.keep_alive());
  request.headers.set("Connection", "TE, Close");
  EXPECT_FALSE(request.keep_alive());
}

TEST(ResponseTest, SerializeUsesDefaultReason) {
  Response response;
  response.status = 404;
  response.reason.clear();
  EXPECT_NE(response.serialize().find("HTTP/1.1 404 Not Found\r\n"),
            std::string::npos);
}

TEST(ResponseTest, MakeSetsContentType) {
  Response response = Response::make(200, "OK", "<a/>", "text/xml");
  EXPECT_EQ(response.headers.get("Content-Type"), "text/xml");
  Response empty = Response::make(204, "No Content");
  EXPECT_FALSE(empty.headers.contains("Content-Type"));
}

TEST(DefaultReasonTest, CoversCommonCodes) {
  EXPECT_EQ(default_reason(200), "OK");
  EXPECT_EQ(default_reason(400), "Bad Request");
  EXPECT_EQ(default_reason(500), "Internal Server Error");
  EXPECT_EQ(default_reason(299), "Unknown");
}

}  // namespace
}  // namespace spi::http
