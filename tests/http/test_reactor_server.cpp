// Reactor-driver integration tests over real TCP sockets: the hardening
// parity cases from test_hardening.cpp (slowloris 408, idle reap, 503 at
// the accept cap, malformed 400) plus reactor-specific behaviour —
// keep-alive pipelining, many parked connections on one loop thread, the
// loop/connection gauges, and the stop()/stop_accepting() join contract.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/client.hpp"
#include "http/server.hpp"
#include "net/tcp_transport.hpp"

namespace spi::http {
namespace {

using namespace std::chrono_literals;

Response ok_handler(const Request& request) {
  return Response::make(200, "OK", "echo:" + request.body);
}

class ReactorServerTest : public ::testing::Test {
 protected:
  std::unique_ptr<HttpServer> make_server(ServerOptions options = {}) {
    auto server = std::make_unique<HttpServer>(
        transport_, net::Endpoint{"127.0.0.1", 0}, ok_handler, options);
    EXPECT_TRUE(server->start().ok());
    return server;
  }

  std::unique_ptr<net::Connection> connect(const HttpServer& server) {
    auto connection = transport_.connect(server.endpoint());
    EXPECT_TRUE(connection.ok());
    return std::move(connection.value());
  }

  static std::string drain(net::Connection& connection) {
    std::string received;
    while (true) {
      auto chunk = connection.receive(4096);
      if (!chunk.ok()) break;
      received += chunk.value();
    }
    return received;
  }

  // Receives until `count` complete responses have been framed.
  static std::vector<Response> receive_responses(net::Connection& connection,
                                                 size_t count) {
    MessageParser parser(MessageParser::Mode::kResponse);
    std::vector<Response> responses;
    while (responses.size() < count) {
      if (auto response = parser.poll_response()) {
        responses.push_back(std::move(*response));
        continue;
      }
      if (parser.failed()) break;
      auto chunk = connection.receive(4096);
      if (!chunk.ok()) break;
      parser.feed(chunk.value());
    }
    return responses;
  }

  net::TcpTransport transport_;
};

TEST_F(ReactorServerTest, ServesRequestsInReactorMode) {
  auto server = make_server();
  ASSERT_TRUE(server->reactor_mode());

  HttpClient client(transport_, server->endpoint());
  for (int i = 0; i < 5; ++i) {
    auto response = client.post("/svc", "ping" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.error().to_string();
    EXPECT_EQ(response.value().status, 200);
    EXPECT_EQ(response.value().body, "echo:ping" + std::to_string(i));
  }
  EXPECT_EQ(server->requests_served(), 5u);
  EXPECT_GT(server->reactor_loop_iterations(), 0u);
}

TEST_F(ReactorServerTest, ReactorThreadsZeroFallsBackToBlockingDriver) {
  ServerOptions options;
  options.reactor_threads = 0;
  auto server = make_server(options);
  EXPECT_FALSE(server->reactor_mode());

  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/svc", "hi");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body, "echo:hi");
}

TEST_F(ReactorServerTest, KeepAliveConnectionServesManySequentialRequests) {
  auto server = make_server();
  auto connection = connect(*server);
  for (int i = 0; i < 3; ++i) {
    Request request;
    request.target = "/svc";
    request.body = "r" + std::to_string(i);
    ASSERT_TRUE(connection->send(request.serialize()).ok());
    auto responses = receive_responses(*connection, 1);
    ASSERT_EQ(responses.size(), 1u);
    EXPECT_EQ(responses[0].status, 200);
    EXPECT_EQ(responses[0].body, "echo:r" + std::to_string(i));
  }
  EXPECT_EQ(server->requests_served(), 3u);
  EXPECT_EQ(server->open_connections(), 1u);
}

TEST_F(ReactorServerTest, PipelinedRequestsAnsweredInOrder) {
  auto server = make_server();
  auto connection = connect(*server);
  Request a, b;
  a.target = b.target = "/svc";
  a.body = "first";
  b.body = "second";
  // Both requests hit the socket before any response: the FSM serves them
  // back to back off the parser buffer.
  ASSERT_TRUE(connection->send(a.serialize() + b.serialize()).ok());
  auto responses = receive_responses(*connection, 2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "echo:first");
  EXPECT_EQ(responses[1].body, "echo:second");
}

TEST_F(ReactorServerTest, MalformedRequestGets400AndClose) {
  auto server = make_server();
  auto connection = connect(*server);
  ASSERT_TRUE(connection->send("NOT EVEN HTTP\r\n\r\n").ok());
  std::string received = drain(*connection);
  EXPECT_NE(received.find("400"), std::string::npos) << received;
  EXPECT_NE(received.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server->requests_served(), 0u);
}

TEST_F(ReactorServerTest, SlowlorisDribbleIsShedWith408) {
  ServerOptions options;
  options.header_read_timeout = 150ms;
  options.idle_timeout = kNoTimeout;
  auto server = make_server(options);

  auto connection = connect(*server);
  const std::string_view head = "POST /spi HTTP/1.1\r\nHost: s\r\nX-A: ";
  for (size_t i = 0; i < head.size(); i += 4) {
    if (!connection->send(head.substr(i, 4)).ok()) break;
    std::this_thread::sleep_for(20ms);
  }
  std::string received = drain(*connection);
  EXPECT_NE(received.find("408"), std::string::npos) << received;
  EXPECT_NE(received.find("Connection: close"), std::string::npos);
  EXPECT_GE(server->read_timeouts(), 1u);
  EXPECT_EQ(server->requests_served(), 0u);

  // The loop never blocked on the attacker: a normal client is served.
  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/x", "after");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
}

TEST_F(ReactorServerTest, IdleKeepAliveConnectionIsReapedSilently) {
  ServerOptions options;
  options.idle_timeout = 100ms;
  options.header_read_timeout = kNoTimeout;
  auto server = make_server(options);

  auto connection = connect(*server);
  Request request;
  request.body = "z";
  ASSERT_TRUE(connection->send(request.serialize()).ok());
  auto responses = receive_responses(*connection, 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);

  // Then go idle: the timer wheel reaps the connection without writing.
  auto next = connection->receive(4096);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code(), ErrorCode::kConnectionClosed);
  EXPECT_EQ(server->read_timeouts(), 0u);
  for (int i = 0; i < 100 && server->open_connections() > 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server->open_connections(), 0u);
}

TEST_F(ReactorServerTest, ConnectionCapAnswers503AtAccept) {
  ServerOptions options;
  options.max_connections = 2;
  auto server = make_server(options);

  auto first = connect(*server);
  auto second = connect(*server);
  for (int i = 0; i < 100 && server->open_connections() < 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(server->open_connections(), 2u);

  auto third = connect(*server);
  std::string received = drain(*third);
  EXPECT_NE(received.find("503"), std::string::npos) << received;
  EXPECT_NE(received.find("Retry-After"), std::string::npos);
  EXPECT_GE(server->connections_rejected(), 1u);

  first->close();
  for (int i = 0; i < 100 && server->open_connections() >= 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/x", "after");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
}

TEST_F(ReactorServerTest, ManyParkedConnectionsDoNotOccupyPoolThreads) {
  // The reactor's whole point: parked keep-alive connections cost no
  // protocol threads. With a 2-thread pool, park well over 2 connections
  // and verify fresh requests still flow.
  ServerOptions options;
  options.protocol_threads = 2;
  auto server = make_server(options);

  std::vector<std::unique_ptr<net::Connection>> parked;
  for (int i = 0; i < 64; ++i) parked.push_back(connect(*server));
  for (int i = 0; i < 200 && server->open_connections() < 64; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(server->open_connections(), 64u);
  EXPECT_EQ(server->reactor_connections(), 64u);

  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/x", "through");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body, "echo:through");
}

TEST_F(ReactorServerTest, MultipleReactorsShardConnections) {
  ServerOptions options;
  options.reactor_threads = 2;
  auto server = make_server(options);

  std::vector<std::unique_ptr<net::Connection>> connections;
  std::vector<std::string> bodies;
  for (int i = 0; i < 8; ++i) {
    connections.push_back(connect(*server));
    Request request;
    request.body = "c" + std::to_string(i);
    ASSERT_TRUE(connections.back()->send(request.serialize()).ok());
    bodies.push_back("echo:c" + std::to_string(i));
  }
  for (size_t i = 0; i < connections.size(); ++i) {
    auto responses = receive_responses(*connections[i], 1);
    ASSERT_EQ(responses.size(), 1u) << "connection " << i;
    EXPECT_EQ(responses[0].body, bodies[i]);
  }
  EXPECT_EQ(server->requests_served(), 8u);
}

TEST_F(ReactorServerTest, AcceptShardingGivesEveryLoopAListener) {
  ServerOptions options;
  options.reactor_threads = 2;
  auto server = make_server(options);
  if (!transport_.supports_reuse_port()) {
    GTEST_SKIP() << "no SO_REUSEPORT on this platform";
  }
  ASSERT_TRUE(server->accept_sharded());
  ASSERT_EQ(server->loop_count(), 2u);

  // Kernel 4-tuple hashing spreads distinct client ports across the two
  // accept queues; with 32 connections each loop gets some (the chance of
  // an empty loop is 2^-32). Every accept is local: loop accepts sum to
  // the connection count, and connections stay on the loop that accepted
  // them.
  std::vector<std::unique_ptr<net::Connection>> parked;
  for (int i = 0; i < 32; ++i) parked.push_back(connect(*server));
  for (int i = 0; i < 200 && server->open_connections() < 32; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(server->open_connections(), 32u);

  auto loop0 = server->loop_snapshot(0);
  auto loop1 = server->loop_snapshot(1);
  EXPECT_EQ(loop0.accepts + loop1.accepts, 32u);
  EXPECT_EQ(loop0.connections + loop1.connections, 32u);
  EXPECT_GT(loop0.accepts, 0u);
  EXPECT_GT(loop1.accepts, 0u);
  EXPECT_EQ(loop0.connections, loop0.accepts);
  EXPECT_EQ(loop1.connections, loop1.accepts);

  // Requests still flow through the sharded listeners.
  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/x", "sharded");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body, "echo:sharded");
}

TEST_F(ReactorServerTest, AcceptShardingOffFallsBackToRoundRobin) {
  ServerOptions options;
  options.reactor_threads = 2;
  options.accept_sharding = false;
  auto server = make_server(options);
  EXPECT_FALSE(server->accept_sharded());

  // Round-robin handoff from the loop-0 listener: connections alternate
  // across loops deterministically.
  std::vector<std::unique_ptr<net::Connection>> parked;
  for (int i = 0; i < 8; ++i) parked.push_back(connect(*server));
  for (int i = 0; i < 200 && server->open_connections() < 8; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(server->open_connections(), 8u);
  EXPECT_EQ(server->loop_snapshot(0).connections, 4u);
  EXPECT_EQ(server->loop_snapshot(1).connections, 4u);
}

TEST_F(ReactorServerTest, SingleLoopServerDoesNotShard) {
  ServerOptions options;
  options.reactor_threads = 1;
  auto server = make_server(options);
  EXPECT_FALSE(server->accept_sharded());
  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/x", "one");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
}

TEST_F(ReactorServerTest, AcceptBatchCapStillDrainsFullBacklog) {
  // A tiny per-wake cap may take several wakes, but the level-triggered
  // poller re-reports the listener until the backlog is dry: every
  // connect is eventually served.
  ServerOptions options;
  options.accept_batch_per_wake = 2;
  auto server = make_server(options);

  std::vector<std::unique_ptr<net::Connection>> parked;
  for (int i = 0; i < 16; ++i) parked.push_back(connect(*server));
  for (int i = 0; i < 200 && server->open_connections() < 16; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server->open_connections(), 16u);

  HttpClient client(transport_, server->endpoint());
  auto response = client.post("/x", "drained");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
}

TEST_F(ReactorServerTest, StopAcceptingThenStopJoinsExactlyOnce) {
  // Satellite regression: stop_accepting() followed by stop() used to
  // double-join the acceptor. Both orders and repeats must be safe.
  auto server = make_server();
  HttpClient client(transport_, server->endpoint());
  ASSERT_TRUE(client.post("/x", "a").ok());

  server->stop_accepting();
  EXPECT_FALSE(transport_.connect(server->endpoint()).ok());
  server->stop_accepting();  // idempotent
  server->stop();
  server->stop();  // idempotent
  EXPECT_EQ(server->open_connections(), 0u);
}

TEST_F(ReactorServerTest, StopTearsDownParkedConnections) {
  auto server = make_server();
  std::vector<std::unique_ptr<net::Connection>> parked;
  for (int i = 0; i < 8; ++i) parked.push_back(connect(*server));
  for (int i = 0; i < 100 && server->open_connections() < 8; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  server->stop();
  EXPECT_EQ(server->open_connections(), 0u);
  EXPECT_EQ(server->reactor_connections(), 0u);
  for (auto& connection : parked) {
    auto next = connection->receive(64);
    EXPECT_FALSE(next.ok());
  }
}

TEST_F(ReactorServerTest, GaugesExposeLoopActivity) {
  ServerOptions options;
  options.idle_timeout = 10s;
  auto server = make_server(options);
  auto connection = connect(*server);
  for (int i = 0; i < 100 && server->open_connections() < 1; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server->reactor_connections(), 1u);
  EXPECT_GT(server->reactor_loop_iterations(), 0u);
  // The parked connection's idle timer sits on the loop's wheel.
  EXPECT_GE(server->timer_wheel_depth(), 1u);
}

}  // namespace
}  // namespace spi::http
