// ConnectionFsm unit tests against a fake Host: every protocol decision
// (dispatch, 400/408, keep-alive vs close, which timer is armed, counter
// accounting) exercised without a transport or a thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "http/connection_fsm.hpp"

namespace spi::http {
namespace {

using namespace std::chrono_literals;

TimePoint at(Duration offset) { return TimePoint{} + offset; }

struct FakeHost : ConnectionFsm::Host {
  struct Send {
    std::string bytes;  // segments joined, for wire-content assertions
    std::vector<std::string> segments;
    bool close_after;
  };
  std::vector<Send> sends;
  std::vector<Request> dispatched;
  std::vector<std::pair<ConnectionFsm::TimerKind, Duration>> armed;
  int cancels = 0;
  int closes = 0;

  void send_bytes(std::vector<std::string> segments,
                  bool close_after) override {
    Send send;
    for (const std::string& segment : segments) send.bytes += segment;
    send.segments = std::move(segments);
    send.close_after = close_after;
    sends.push_back(std::move(send));
  }
  void dispatch(Request request) override {
    dispatched.push_back(std::move(request));
  }
  void arm_timer(ConnectionFsm::TimerKind kind, Duration delay) override {
    armed.emplace_back(kind, delay);
  }
  void cancel_timer() override { ++cancels; }
  void close_connection() override { ++closes; }
};

class ConnectionFsmTest : public ::testing::Test {
 protected:
  ConnectionFsm make(ConnectionFsm::Config config = {}) {
    return ConnectionFsm(host_, config,
                         {&requests_served_, &active_requests_,
                          &read_timeouts_},
                         accepting_);
  }

  static std::string simple_request(bool close = false) {
    std::string req =
        "POST /svc HTTP/1.1\r\nHost: test\r\nContent-Length: 2\r\n";
    if (close) req += "Connection: close\r\n";
    req += "\r\nhi";
    return req;
  }

  FakeHost host_;
  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<size_t> active_requests_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
};

TEST_F(ConnectionFsmTest, FullRequestDispatchesAndKeepsAlive) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  EXPECT_EQ(fsm.state(), ConnectionState::kKeepAliveIdle);

  fsm.on_bytes(simple_request(), at(1ms));
  ASSERT_EQ(host_.dispatched.size(), 1u);
  EXPECT_EQ(host_.dispatched[0].target, "/svc");
  EXPECT_EQ(host_.dispatched[0].body, "hi");
  EXPECT_EQ(fsm.state(), ConnectionState::kDispatched);
  EXPECT_FALSE(fsm.wants_read());  // reads paused while handler runs
  EXPECT_EQ(active_requests_.load(), 1u);

  fsm.on_response(Response::make(200, "OK", "ok"), false, at(2ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  EXPECT_FALSE(host_.sends[0].close_after);
  EXPECT_EQ(host_.sends[0].bytes.find("Connection: close"),
            std::string::npos);
  EXPECT_EQ(fsm.state(), ConnectionState::kWritingResponse);
  EXPECT_EQ(requests_served_.load(), 1u);

  fsm.on_send_complete(at(3ms));
  EXPECT_EQ(fsm.state(), ConnectionState::kKeepAliveIdle);
  EXPECT_TRUE(fsm.wants_read());
  EXPECT_EQ(active_requests_.load(), 0u);
  EXPECT_EQ(host_.closes, 0);
}

TEST_F(ConnectionFsmTest, ResponseArrivesAsHeadAndBodySegments) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request(), at(1ms));

  fsm.on_response(Response::make(200, "OK", "payload"), false, at(2ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  // Head and body travel as separate segments so the host can hand the
  // body straight to writev without re-copying it into the head buffer.
  ASSERT_EQ(host_.sends[0].segments.size(), 2u);
  EXPECT_NE(host_.sends[0].segments[0].find("200 OK"), std::string::npos);
  EXPECT_EQ(host_.sends[0].segments[1], "payload");

  // Empty bodies do not produce an empty trailing segment.
  fsm.on_send_complete(at(3ms));
  fsm.on_bytes(simple_request(), at(4ms));
  fsm.on_response(Response::make(204, "No Content", ""), false, at(5ms));
  ASSERT_EQ(host_.sends.size(), 2u);
  EXPECT_EQ(host_.sends[1].segments.size(), 1u);
}

TEST_F(ConnectionFsmTest, ByteAtATimeRequestStillParses) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  const std::string req = simple_request();
  for (size_t i = 0; i < req.size(); ++i) {
    fsm.on_bytes(std::string_view(&req[i], 1), at(1ms));
  }
  ASSERT_EQ(host_.dispatched.size(), 1u);
  EXPECT_EQ(host_.dispatched[0].body, "hi");
}

TEST_F(ConnectionFsmTest, MalformedBytesGet400ThenClose) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes("GARBAGE NONSENSE\r\n\r\n", at(1ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  EXPECT_NE(host_.sends[0].bytes.find("400 Bad Request"), std::string::npos);
  EXPECT_TRUE(host_.sends[0].close_after);
  EXPECT_TRUE(host_.dispatched.empty());
  fsm.on_send_complete(at(2ms));
  EXPECT_TRUE(fsm.closed());
  EXPECT_EQ(host_.closes, 1);
  // A shed never entered the in-flight span.
  EXPECT_EQ(active_requests_.load(), 0u);
}

TEST_F(ConnectionFsmTest, ConnectionCloseRequestEndsAfterResponse) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request(/*close=*/true), at(1ms));
  fsm.on_response(Response::make(200, "OK"), false, at(2ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  EXPECT_TRUE(host_.sends[0].close_after);
  EXPECT_NE(host_.sends[0].bytes.find("Connection: close"),
            std::string::npos);
  fsm.on_send_complete(at(3ms));
  EXPECT_TRUE(fsm.closed());
}

TEST_F(ConnectionFsmTest, HandlerFailureForcesClose) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request(), at(1ms));
  fsm.on_response(Response::make(500, "Internal Server Error"),
                  /*handler_failed=*/true, at(2ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  EXPECT_TRUE(host_.sends[0].close_after);
}

TEST_F(ConnectionFsmTest, DrainDisablesKeepAlive) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request(), at(1ms));
  accepting_.store(false);  // drain began while the handler ran
  fsm.on_response(Response::make(200, "OK"), false, at(2ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  EXPECT_TRUE(host_.sends[0].close_after);
  EXPECT_NE(host_.sends[0].bytes.find("Connection: close"),
            std::string::npos);
}

TEST_F(ConnectionFsmTest, HeaderTimeoutAnswers408) {
  ConnectionFsm::Config config;
  config.header_read_timeout = 100ms;
  auto fsm = make(config);
  fsm.on_open(at(0ms));
  fsm.on_bytes("POST / HTTP/1.1\r\n", at(1ms));
  ASSERT_FALSE(host_.armed.empty());
  EXPECT_EQ(host_.armed.back().first, ConnectionFsm::TimerKind::kHeaderRead);
  EXPECT_EQ(host_.armed.back().second, 100ms);

  fsm.on_timer(at(101ms));
  ASSERT_EQ(host_.sends.size(), 1u);
  EXPECT_NE(host_.sends[0].bytes.find("408 Request Timeout"),
            std::string::npos);
  EXPECT_TRUE(host_.sends[0].close_after);
  EXPECT_EQ(read_timeouts_.load(), 1u);
}

TEST_F(ConnectionFsmTest, HeaderTimerNotExtendedByDribbledProgress) {
  ConnectionFsm::Config config;
  config.header_read_timeout = 100ms;
  auto fsm = make(config);
  fsm.on_open(at(0ms));
  fsm.on_bytes("POST / HT", at(1ms));
  fsm.on_bytes("TP/1.1\r\nHost:", at(2ms));
  fsm.on_bytes(" a\r\n", at(3ms));
  // One budget per message: the slowloris drip must not re-arm it.
  int header_arms = 0;
  for (const auto& [kind, delay] : host_.armed) {
    if (kind == ConnectionFsm::TimerKind::kHeaderRead) ++header_arms;
  }
  EXPECT_EQ(header_arms, 1);
}

TEST_F(ConnectionFsmTest, IdleTimeoutClosesSilently) {
  ConnectionFsm::Config config;
  config.idle_timeout = 50ms;
  auto fsm = make(config);
  fsm.on_open(at(0ms));
  ASSERT_FALSE(host_.armed.empty());
  EXPECT_EQ(host_.armed.back().first, ConnectionFsm::TimerKind::kIdle);
  fsm.on_timer(at(51ms));
  EXPECT_TRUE(fsm.closed());
  EXPECT_TRUE(host_.sends.empty());  // nothing to answer between messages
  EXPECT_EQ(host_.closes, 1);
}

TEST_F(ConnectionFsmTest, StaleTimerAfterDispatchIsIgnored) {
  ConnectionFsm::Config config;
  config.header_read_timeout = 100ms;
  auto fsm = make(config);
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request(), at(1ms));
  ASSERT_EQ(fsm.state(), ConnectionState::kDispatched);
  fsm.on_timer(at(200ms));  // raced the cancel; progress already happened
  EXPECT_EQ(fsm.state(), ConnectionState::kDispatched);
  EXPECT_TRUE(host_.sends.empty());
  EXPECT_EQ(host_.closes, 0);
}

TEST_F(ConnectionFsmTest, PipelinedRequestsServeInOrder) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request() + simple_request(), at(1ms));
  // One request in flight at a time; the second waits in the parser.
  ASSERT_EQ(host_.dispatched.size(), 1u);
  fsm.on_response(Response::make(200, "OK"), false, at(2ms));
  fsm.on_send_complete(at(3ms));
  // Send-complete polls the buffer and dispatches the pipelined successor.
  ASSERT_EQ(host_.dispatched.size(), 2u);
  EXPECT_EQ(fsm.state(), ConnectionState::kDispatched);
  fsm.on_response(Response::make(200, "OK"), false, at(4ms));
  fsm.on_send_complete(at(5ms));
  EXPECT_EQ(requests_served_.load(), 2u);
  EXPECT_EQ(active_requests_.load(), 0u);
}

TEST_F(ConnectionFsmTest, PeerCloseMidMessageBalancesCounters) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes("POST / HTTP/1.1\r\nContent-Le", at(1ms));
  EXPECT_EQ(fsm.state(), ConnectionState::kReadingHeaders);
  fsm.on_peer_closed();
  EXPECT_TRUE(fsm.closed());
  EXPECT_EQ(host_.closes, 1);
  EXPECT_EQ(active_requests_.load(), 0u);
  // Terminal: later events are inert.
  fsm.on_bytes("ngth: 2\r\n\r\nhi", at(2ms));
  EXPECT_TRUE(host_.dispatched.empty());
}

TEST_F(ConnectionFsmTest, PeerCloseWhileDispatchedDropsResponse) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes(simple_request(), at(1ms));
  EXPECT_EQ(active_requests_.load(), 1u);
  fsm.on_peer_closed();
  EXPECT_EQ(active_requests_.load(), 0u);
  // The handler still finishes; its response has nowhere to go.
  fsm.on_response(Response::make(200, "OK"), false, at(2ms));
  EXPECT_TRUE(host_.sends.empty());
  EXPECT_EQ(requests_served_.load(), 0u);
}

TEST_F(ConnectionFsmTest, BodyStateTracksFraming) {
  auto fsm = make();
  fsm.on_open(at(0ms));
  fsm.on_bytes("POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\nhel", at(1ms));
  EXPECT_EQ(fsm.state(), ConnectionState::kReadingBody);
  fsm.on_bytes("lo world", at(2ms));
  ASSERT_EQ(host_.dispatched.size(), 1u);
  EXPECT_EQ(host_.dispatched[0].body, "hello world");
}

}  // namespace
}  // namespace spi::http
