// AsyncHttpClient (DESIGN.md §16) over real TCP sockets: non-blocking
// connect through completion, pipelined in-order response matching on ONE
// pooled connection, wheel-timer attempt expiry against a peer that never
// answers, and cancel/drain returning the loser's connection to the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http/async_client.hpp"
#include "http/server.hpp"
#include "net/tcp_transport.hpp"

namespace spi::http {
namespace {

using namespace std::chrono_literals;

Response echo_handler(const Request& request) {
  return Response::make(200, "OK", "echo:" + request.body);
}

class AsyncClientTest : public ::testing::Test {
 protected:
  void SetUp() override { reactor_.start(); }

  std::unique_ptr<HttpServer> make_server(ServerOptions options = {}) {
    auto server = std::make_unique<HttpServer>(
        transport_, net::Endpoint{"127.0.0.1", 0}, echo_handler, options);
    EXPECT_TRUE(server->start().ok());
    return server;
  }

  static Request post(std::string body) {
    Request request;
    request.method = "POST";
    request.target = "/svc";
    request.body = std::move(body);
    return request;
  }

  net::TcpTransport transport_;
  Reactor reactor_;
};

TEST_F(AsyncClientTest, RoundTripAndKeepAliveReuse) {
  auto server = make_server();
  AsyncHttpClient client(reactor_, transport_);

  auto first = client.send_future(server->endpoint(), post("one"), 5s).get();
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_EQ(first.value().status, 200);
  EXPECT_EQ(first.value().body, "echo:one");

  auto second = client.send_future(server->endpoint(), post("two"), 5s).get();
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_EQ(second.value().body, "echo:two");

  auto stats = client.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.responses, 2u);
  // The second exchange rode the first one's warm connection.
  EXPECT_EQ(stats.connects_started, 1u);
  EXPECT_GE(stats.reused, 1u);
}

TEST_F(AsyncClientTest, ManyConcurrentExchangesFromOneLoopThread) {
  auto server = make_server();
  AsyncHttpClient client(reactor_, transport_);

  constexpr int kN = 64;
  std::vector<std::future<Result<Response>>> futures;
  futures.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    futures.push_back(client.send_future(server->endpoint(),
                                         post(std::to_string(i)), 10s));
  }
  for (int i = 0; i < kN; ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().body, "echo:" + std::to_string(i));
  }
  EXPECT_EQ(client.inflight(), 0u);
}

// The satellite case: several exchanges multiplexed onto ONE connection
// with bounded pipelining; HTTP/1.1 answers in write order, and each
// response must land on ITS request even though they share the socket.
TEST_F(AsyncClientTest, PipelinedResponsesMatchRequestsInOrderOnOneConnection) {
  auto server = make_server();
  AsyncClientOptions options;
  options.max_connections_per_endpoint = 1;
  options.max_pipeline_depth = 8;
  AsyncHttpClient client(reactor_, transport_, options);

  constexpr int kN = 24;
  std::vector<std::future<Result<Response>>> futures;
  futures.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    futures.push_back(client.send_future(server->endpoint(),
                                         post("req-" + std::to_string(i)),
                                         10s));
  }
  for (int i = 0; i < kN; ++i) {
    auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    EXPECT_EQ(result.value().body, "echo:req-" + std::to_string(i));
  }

  auto stats = client.stats();
  // One endpoint, a hard cap of one connection: everything multiplexed.
  EXPECT_EQ(stats.connects_started, 1u);
  EXPECT_GE(stats.pipelined, 1u);
}

// The attempt deadline lives on the reactor's timer wheel, so it fires
// even though the socket never becomes readable (no blocked receive, no
// per-socket timeout).
TEST_F(AsyncClientTest, TimerWheelExpiresAttemptAgainstSilentPeer) {
  auto listener = transport_.listen(net::Endpoint{"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<net::Connection>> held;
  std::mutex held_mutex;
  std::thread acceptor([&] {
    while (!stop.load()) {
      auto connection = listener.value()->accept();
      if (!connection.ok()) break;
      // Accept, read nothing, answer nothing: the peer that hangs.
      std::lock_guard lock(held_mutex);
      held.push_back(std::move(connection).value());
    }
  });

  AsyncHttpClient client(reactor_, transport_);
  auto result =
      client.send_future(listener.value()->endpoint(), post("hello"), 100ms)
          .get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
  EXPECT_EQ(client.stats().timeouts, 1u);
  EXPECT_EQ(client.inflight(), 0u);

  stop.store(true);
  listener.value()->close();
  acceptor.join();
}

// cancel() must not burn the connection: the stale response is drained
// off the wire and the connection rejoins the pool for the next exchange
// (how a hedge loser releases its connection).
TEST_F(AsyncClientTest, CancelDrainsStaleResponseAndReturnsConnectionToPool) {
  ServerOptions slow_options;
  auto server = std::make_unique<HttpServer>(
      transport_, net::Endpoint{"127.0.0.1", 0},
      [](const Request& request) {
        std::this_thread::sleep_for(50ms);
        return Response::make(200, "OK", "late:" + request.body);
      },
      slow_options);
  ASSERT_TRUE(server->start().ok());

  AsyncClientOptions options;
  options.max_connections_per_endpoint = 1;
  AsyncHttpClient client(reactor_, transport_, options);

  std::promise<Result<Response>> cancelled;
  auto cancelled_future = cancelled.get_future();
  AsyncHttpClient::RequestId id = client.send(
      server->endpoint(), post("victim"), 5s,
      [&cancelled](Result<Response> r) { cancelled.set_value(std::move(r)); });
  // Let the request reach the wire before abandoning it.
  std::this_thread::sleep_for(10ms);
  client.cancel(id);

  auto result = cancelled_future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kCancelled);
  EXPECT_GE(client.stats().cancelled, 1u);

  // The stale response drains and the connection comes back idle.
  for (int i = 0; i < 200 && client.idle_connections(server->endpoint()) == 0;
       ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(client.idle_connections(server->endpoint()), 1u);
  EXPECT_GE(client.stats().drained, 1u);

  // And the NEXT exchange reuses it instead of dialing.
  auto followup =
      client.send_future(server->endpoint(), post("after"), 5s).get();
  ASSERT_TRUE(followup.ok()) << followup.error().to_string();
  EXPECT_EQ(followup.value().body, "late:after");
  auto stats = client.stats();
  EXPECT_EQ(stats.connects_started, 1u);
  EXPECT_GE(stats.reused, 1u);
}

}  // namespace
}  // namespace spi::http
