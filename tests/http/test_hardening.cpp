// Connection hardening (DESIGN.md §11): slowloris header-read deadline,
// idle keep-alive timeout, the max_connections accept cap, and the
// lowered default body bound.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "http/client.hpp"
#include "http/server.hpp"
#include "net/sim_transport.hpp"

namespace spi::http {
namespace {

using namespace std::chrono_literals;

Response ok_handler(const Request& request) {
  return Response::make(200, "OK", "echo:" + request.body);
}

std::unique_ptr<HttpServer> make_server(net::SimTransport& transport,
                                        ServerOptions options) {
  auto server = std::make_unique<HttpServer>(
      transport, net::Endpoint{"server", 80}, ok_handler, options);
  EXPECT_TRUE(server->start().ok());
  return server;
}

// Reads until the connection yields a complete response head + body or
// closes; returns everything received.
std::string drain_connection(net::Connection& connection) {
  std::string received;
  while (true) {
    auto chunk = connection.receive(4096);
    if (!chunk.ok()) break;
    received += chunk.value();
  }
  return received;
}

TEST(HttpHardeningTest, SlowlorisDribbleIsShedWith408) {
  net::SimTransport transport;
  ServerOptions options;
  options.header_read_timeout = 150ms;
  options.idle_timeout = kNoTimeout;
  auto server = make_server(transport, options);

  auto connection = transport.connect(server->endpoint());
  ASSERT_TRUE(connection.ok());
  // Dribble a request head one fragment at a time, never finishing it.
  const std::string_view head = "POST /spi HTTP/1.1\r\nHost: s\r\nX-A: ";
  for (size_t i = 0; i < head.size(); i += 4) {
    if (!connection.value()->send(head.substr(i, 4)).ok()) break;
    std::this_thread::sleep_for(20ms);
  }
  std::string received = drain_connection(*connection.value());
  EXPECT_NE(received.find("408"), std::string::npos) << received;
  EXPECT_NE(received.find("Connection: close"), std::string::npos);
  EXPECT_GE(server->read_timeouts(), 1u);
  EXPECT_EQ(server->requests_served(), 0u);

  // The protocol thread the attacker held is free again: a normal client
  // is served promptly.
  HttpClient client(transport, server->endpoint());
  auto response = client.post("/x", "after");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
}

TEST(HttpHardeningTest, CompleteRequestWithinBudgetIsServed) {
  net::SimTransport transport;
  ServerOptions options;
  options.header_read_timeout = 500ms;
  auto server = make_server(transport, options);

  // Same dribbling pattern, but the message completes inside the budget:
  // hardening must not break merely-slow legitimate peers.
  auto connection = transport.connect(server->endpoint());
  ASSERT_TRUE(connection.ok());
  const std::string request =
      "POST /x HTTP/1.1\r\nHost: s\r\nConnection: close\r\n"
      "Content-Length: 2\r\n\r\nhi";
  for (size_t i = 0; i < request.size(); i += 16) {
    ASSERT_TRUE(connection.value()->send(request.substr(i, 16)).ok());
    std::this_thread::sleep_for(5ms);
  }
  std::string received = drain_connection(*connection.value());
  EXPECT_NE(received.find("200"), std::string::npos) << received;
  EXPECT_NE(received.find("echo:hi"), std::string::npos);
  EXPECT_EQ(server->read_timeouts(), 0u);
}

TEST(HttpHardeningTest, IdleKeepAliveConnectionIsClosedSilently) {
  net::SimTransport transport;
  ServerOptions options;
  options.idle_timeout = 100ms;
  options.header_read_timeout = kNoTimeout;
  auto server = make_server(transport, options);

  auto connection = transport.connect(server->endpoint());
  ASSERT_TRUE(connection.ok());
  // Serve one keep-alive request so the connection is established...
  ASSERT_TRUE(connection.value()
                  ->send("POST /x HTTP/1.1\r\nHost: s\r\n"
                         "Content-Length: 1\r\n\r\nz")
                  .ok());
  auto first = connection.value()->receive(4096);
  ASSERT_TRUE(first.ok());
  EXPECT_NE(first.value().find("200"), std::string::npos);

  // ...then go idle. The server closes without writing anything (between
  // messages there is no request to answer with 408).
  auto next = connection.value()->receive(4096);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code(), ErrorCode::kConnectionClosed);
  EXPECT_EQ(server->read_timeouts(), 0u);
}

TEST(HttpHardeningTest, ConnectionCapAnswers503AtAccept) {
  net::SimTransport transport;
  ServerOptions options;
  options.max_connections = 2;
  auto server = make_server(transport, options);

  // Two parked connections occupy the cap (no request sent, so they hold
  // their slots).
  auto first = transport.connect(server->endpoint());
  auto second = transport.connect(server->endpoint());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Give the acceptor time to register both before the probe arrives.
  for (int i = 0; i < 100 && server->open_connections() < 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(server->open_connections(), 2u);

  auto third = transport.connect(server->endpoint());
  ASSERT_TRUE(third.ok());
  std::string received = drain_connection(*third.value());
  EXPECT_NE(received.find("503"), std::string::npos) << received;
  EXPECT_NE(received.find("Retry-After"), std::string::npos);
  EXPECT_GE(server->connections_rejected(), 1u);

  // Releasing a slot restores service for new connections.
  first.value()->close();
  for (int i = 0; i < 100 && server->open_connections() >= 2; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  HttpClient client(transport, server->endpoint());
  auto response = client.post("/x", "after");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
}

TEST(HttpHardeningTest, BodyOverConfiguredLimitRejected) {
  net::SimTransport transport;
  ServerOptions options;
  options.limits.max_body_bytes = 1024;
  auto server = make_server(transport, options);

  HttpClient client(transport, server->endpoint());
  auto over = client.post("/x", std::string(2048, 'b'));
  // The server drops the connection or answers an error — either way the
  // oversized body must not be served.
  if (over.ok()) {
    EXPECT_GE(over.value().status, 400) << over.value().status;
  }
  EXPECT_EQ(server->requests_served(), 0u);

  auto under = client.post("/x", std::string(512, 'b'));
  ASSERT_TRUE(under.ok()) << under.error().to_string();
  EXPECT_EQ(under.value().status, 200);
}

TEST(HttpHardeningTest, DefaultBodyBoundIsSane) {
  // The default caps hostile Content-Length claims at 64 MiB — far above
  // any paper workload (Figure 7 peaks ~13 MB) but no longer effectively
  // unbounded.
  EXPECT_EQ(ParserLimits{}.max_body_bytes, 64u * 1024 * 1024);
}

}  // namespace
}  // namespace spi::http
