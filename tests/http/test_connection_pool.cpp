#include <gtest/gtest.h>

#include <thread>

#include "http/connection_pool.hpp"
#include "net/sim_transport.hpp"

namespace spi::http {
namespace {

class ConnectionPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    listener_ = transport_.listen(net::Endpoint{"server", 80}).value();
    // Echo server: accepts connections forever, echoes per message.
    acceptor_ = std::jthread([this] {
      while (true) {
        auto connection = listener_->accept();
        if (!connection.ok()) return;
        workers_.emplace_back(
            [conn = std::shared_ptr<net::Connection>(
                 std::move(connection).value())] {
              while (true) {
                auto data = conn->receive(4096);
                if (!data.ok()) return;
                if (!conn->send(data.value()).ok()) return;
              }
            });
      }
    });
  }

  void TearDown() override {
    listener_->close();
    if (acceptor_.joinable()) acceptor_.join();
    workers_.clear();
  }

  net::Endpoint endpoint() { return listener_->endpoint(); }

  net::SimTransport transport_;
  std::unique_ptr<net::Listener> listener_;
  std::jthread acceptor_;
  std::vector<std::jthread> workers_;
};

TEST_F(ConnectionPoolTest, AcquireCreatesThenReuses) {
  ConnectionPool pool(transport_);
  {
    auto lease = pool.acquire(endpoint());
    ASSERT_TRUE(lease.ok());
    ASSERT_TRUE(lease.value()->send("ping").ok());
    auto echoed = lease.value()->receive(64);
    ASSERT_TRUE(echoed.ok());
    EXPECT_EQ(echoed.value(), "ping");
  }  // returned to pool
  EXPECT_EQ(pool.idle_count(endpoint()), 1u);
  {
    auto lease = pool.acquire(endpoint());
    ASSERT_TRUE(lease.ok());
  }
  auto stats = pool.stats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.returned, 2u);
  EXPECT_EQ(transport_.stats().connections_opened, 1u);
}

TEST_F(ConnectionPoolTest, PoisonedConnectionsAreDiscarded) {
  ConnectionPool pool(transport_);
  {
    auto lease = pool.acquire(endpoint());
    ASSERT_TRUE(lease.ok());
    lease.value().poison();
  }
  EXPECT_EQ(pool.idle_count(endpoint()), 0u);
  EXPECT_EQ(pool.stats().discarded, 1u);
  // Next acquire builds a fresh connection.
  auto lease = pool.acquire(endpoint());
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(pool.stats().created, 2u);
}

TEST_F(ConnectionPoolTest, IdleBoundDiscardsOverflow) {
  ConnectionPool pool(transport_, /*max_idle_per_endpoint=*/2);
  {
    std::vector<PooledConnection> leases;
    for (int i = 0; i < 5; ++i) {
      auto lease = pool.acquire(endpoint());
      ASSERT_TRUE(lease.ok());
      leases.push_back(std::move(lease).value());
    }
  }  // all 5 return; only 2 may be cached
  EXPECT_EQ(pool.idle_count(endpoint()), 2u);
  EXPECT_EQ(pool.stats().discarded, 3u);
}

TEST_F(ConnectionPoolTest, ClearDropsIdleConnections) {
  ConnectionPool pool(transport_);
  { auto lease = pool.acquire(endpoint()); }
  ASSERT_EQ(pool.idle_count(endpoint()), 1u);
  pool.clear();
  EXPECT_EQ(pool.idle_count(endpoint()), 0u);
}

TEST_F(ConnectionPoolTest, ConnectFailureSurfaces) {
  ConnectionPool pool(transport_);
  auto lease = pool.acquire(net::Endpoint{"ghost", 1});
  ASSERT_FALSE(lease.ok());
  EXPECT_EQ(lease.error().code(), ErrorCode::kConnectionFailed);
}

TEST_F(ConnectionPoolTest, MoveSemanticsTransferOwnership) {
  ConnectionPool pool(transport_);
  auto lease = pool.acquire(endpoint());
  ASSERT_TRUE(lease.ok());
  PooledConnection moved = std::move(lease).value();
  EXPECT_TRUE(moved.valid());
  PooledConnection assigned;
  EXPECT_FALSE(assigned.valid());
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.valid());
  // Single return on destruction, not three.
  assigned = PooledConnection();
  EXPECT_EQ(pool.stats().returned, 1u);
}

TEST_F(ConnectionPoolTest, ConcurrentAcquireReleaseIsSafe) {
  ConnectionPool pool(transport_, /*max_idle_per_endpoint=*/4);
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          auto lease = pool.acquire(endpoint());
          if (!lease.ok()) {
            ++failures;
            continue;
          }
          std::string payload = "m" + std::to_string(i);
          if (!lease.value()->send(payload).ok()) {
            ++failures;
            lease.value().poison();
            continue;
          }
          auto echoed = lease.value()->receive(64);
          if (!echoed.ok() || echoed.value() != payload) {
            ++failures;
            lease.value().poison();
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  auto stats = pool.stats();
  EXPECT_EQ(stats.created + stats.reused, 400u);
  // Pooling must have worked: far fewer sockets than acquisitions.
  EXPECT_LT(stats.created, 50u);
}

}  // namespace
}  // namespace spi::http
