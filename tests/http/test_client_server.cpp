// HTTP client + server integration over the in-process transport, plus
// server behaviour cases (keep-alive, errors, handler exceptions).
#include <gtest/gtest.h>

#include <atomic>

#include "common/clock.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "net/sim_transport.hpp"

namespace spi::http {
namespace {

class HttpIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<HttpServer>(
        transport_, net::Endpoint{"server", 80},
        [this](const Request& request) { return handler_(request); });
    ASSERT_TRUE(server_->start().ok());
  }

  net::SimTransport transport_;
  std::function<Response(const Request&)> handler_ =
      [](const Request& request) {
        return Response::make(200, "OK", "echo:" + request.body);
      };
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpIntegrationTest, PostRoundTrip) {
  HttpClient client(transport_, server_->endpoint());
  auto response = client.post("/x", "payload");
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "echo:payload");
}

TEST_F(HttpIntegrationTest, SequentialRequestsWithoutKeepAlive) {
  HttpClient client(transport_, server_->endpoint());
  for (int i = 0; i < 10; ++i) {
    auto response = client.post("/x", std::to_string(i));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().body, "echo:" + std::to_string(i));
  }
  // No keep-alive: each request opened its own connection.
  EXPECT_EQ(transport_.stats().connections_opened, 10u);
  EXPECT_EQ(server_->requests_served(), 10u);
}

TEST_F(HttpIntegrationTest, KeepAliveReusesConnection) {
  ClientOptions options;
  options.keep_alive = true;
  HttpClient client(transport_, server_->endpoint(), options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.post("/x", "k").ok());
  }
  EXPECT_EQ(transport_.stats().connections_opened, 1u);
  EXPECT_EQ(server_->requests_served(), 10u);
}

TEST_F(HttpIntegrationTest, DisconnectForcesReconnect) {
  ClientOptions options;
  options.keep_alive = true;
  HttpClient client(transport_, server_->endpoint(), options);
  ASSERT_TRUE(client.post("/x", "a").ok());
  client.disconnect();
  ASSERT_TRUE(client.post("/x", "b").ok());
  EXPECT_EQ(transport_.stats().connections_opened, 2u);
}

TEST_F(HttpIntegrationTest, HandlerExceptionBecomes500) {
  handler_ = [](const Request&) -> Response {
    throw std::runtime_error("handler exploded");
  };
  HttpClient client(transport_, server_->endpoint());
  auto response = client.post("/x", "boom");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 500);
  EXPECT_NE(response.value().body.find("handler exploded"),
            std::string::npos);
}

TEST_F(HttpIntegrationTest, ErrorStatusesAreReturnedNotErrors) {
  handler_ = [](const Request&) {
    return Response::make(404, "Not Found", "nope");
  };
  HttpClient client(transport_, server_->endpoint());
  auto response = client.post("/x", "");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
}

TEST_F(HttpIntegrationTest, MalformedRequestGets400) {
  // Drive the server with a raw connection to bypass the client's framing.
  auto connection = transport_.connect(server_->endpoint());
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE(connection.value()->send("GARBAGE\r\n\r\n").ok());
  std::string reply;
  while (true) {
    auto chunk = connection.value()->receive(4096);
    if (!chunk.ok()) break;
    reply += chunk.value();
  }
  EXPECT_NE(reply.find("400 Bad Request"), std::string::npos);
}

TEST_F(HttpIntegrationTest, NonPostMethodsReachHandler) {
  handler_ = [](const Request& request) {
    return Response::make(200, "OK", request.method + " " + request.target);
  };
  HttpClient client(transport_, server_->endpoint());
  Request request;
  request.method = "DELETE";
  request.target = "/resource/1";
  auto response = client.send(std::move(request));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().body, "DELETE /resource/1");
}

TEST_F(HttpIntegrationTest, ConcurrentClients) {
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < 8; ++t) {
      clients.emplace_back([&, t] {
        HttpClient client(transport_, server_->endpoint());
        for (int i = 0; i < 20; ++i) {
          std::string body = std::to_string(t) + ":" + std::to_string(i);
          auto response = client.post("/x", body);
          if (!response.ok() || response.value().body != "echo:" + body) {
            ++failures;
          }
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->requests_served(), 160u);
}

TEST_F(HttpIntegrationTest, StopIsIdempotentAndServerRestarts) {
  server_->stop();
  server_->stop();  // idempotent
  ASSERT_TRUE(server_->start().ok());  // rebinds and serves again
  HttpClient client(transport_, server_->endpoint());
  auto response = client.post("/x", "again");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().body, "echo:again");
}

TEST_F(HttpIntegrationTest, StopReturnsPromptlyWithIdleKeepAliveConnections) {
  // Regression: protocol threads parked in receive() on idle persistent
  // connections must not block shutdown (found by bench_ablation_keepalive
  // hanging forever in the fixture destructor).
  ClientOptions options;
  options.keep_alive = true;
  HttpClient client(transport_, server_->endpoint(), options);
  ASSERT_TRUE(client.post("/x", "warm").ok());
  // The connection is now idle in the pool AND held open by the server.
  Stopwatch watch;
  server_->stop();
  EXPECT_LT(watch.elapsed_ms(), 2'000.0);
}

TEST(HttpServerTest, StartFailsOnTakenEndpoint) {
  net::SimTransport transport;
  auto handler = [](const Request&) { return Response::make(200, "OK"); };
  HttpServer first(transport, net::Endpoint{"s", 80}, handler);
  ASSERT_TRUE(first.start().ok());
  HttpServer second(transport, net::Endpoint{"s", 80}, handler);
  EXPECT_FALSE(second.start().ok());
}

TEST(HttpServerTest, NullHandlerThrows) {
  net::SimTransport transport;
  EXPECT_THROW(HttpServer(transport, net::Endpoint{"s", 80}, nullptr),
               SpiError);
}

TEST(HttpClientTest, ConnectFailureSurfaces) {
  net::SimTransport transport;
  HttpClient client(transport, net::Endpoint{"ghost", 1});
  auto response = client.post("/x", "");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.error().code(), ErrorCode::kConnectionFailed);
}

}  // namespace
}  // namespace spi::http
