// Vectored-send path of the reactor driver (DESIGN.md §13), driven through
// a wrapper transport whose connections accept only a few bytes per
// try_sendv call and periodically report kWouldBlock. That forces the
// ReactorConn iovec outbox through every edge it has: partial writes that
// end mid-segment (cursor advancement in place), write-interest re-arming
// after synthetic backpressure, pipelined-response ordering across many
// short gathers, and the sendv_batches/sendv_segments proof counters.
// Plus: the coalesced-string fallback for transports without sendv, and
// the drained-outbox capacity release satellite.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "http/client.hpp"
#include "http/server.hpp"
#include "net/tcp_transport.hpp"

namespace spi::http {
namespace {

/// Delegates everything to a real TCP connection, but clamps each
/// try_sendv gather to `cap` bytes and answers kWouldBlock on every
/// block_every-th call (0 = never). With a level-triggered poller the
/// socket stays writable, so each synthetic kWouldBlock exercises the
/// arm-write-interest / retry-on-readiness cycle without stalling.
class ShortWriteConnection : public net::Connection {
 public:
  struct Counters {
    std::atomic<std::uint64_t> sendv_calls{0};
    std::atomic<std::uint64_t> synthetic_blocks{0};
  };

  ShortWriteConnection(std::unique_ptr<net::Connection> inner, size_t cap,
                       int block_every, bool vectored, Counters& counters)
      : inner_(std::move(inner)),
        cap_(cap),
        block_every_(block_every),
        vectored_(vectored),
        counters_(counters) {}

  Status send(std::string_view bytes) override { return inner_->send(bytes); }
  Result<std::string> receive(size_t max_bytes) override {
    return inner_->receive(max_bytes);
  }
  Status set_receive_timeout(Duration timeout) override {
    return inner_->set_receive_timeout(timeout);
  }
  void close() override { inner_->close(); }
  void abort() override { inner_->abort(); }
  int native_handle() const override { return inner_->native_handle(); }
  Status set_nonblocking(bool enabled) override {
    return inner_->set_nonblocking(enabled);
  }
  Result<std::string> try_receive(size_t max_bytes) override {
    return inner_->try_receive(max_bytes);
  }
  Result<size_t> try_send(std::string_view bytes) override {
    return inner_->try_send(bytes.substr(0, cap_));
  }

  bool supports_sendv() const override { return vectored_; }
  Result<size_t> try_sendv(const net::ConstBuffer* segments,
                           size_t count) override {
    const auto call =
        counters_.sendv_calls.fetch_add(1, std::memory_order_relaxed) + 1;
    if (block_every_ > 0 && call % block_every_ == 0) {
      counters_.synthetic_blocks.fetch_add(1, std::memory_order_relaxed);
      return Error(ErrorCode::kWouldBlock, "synthetic backpressure");
    }
    // Clamp the gather to cap_ bytes, possibly truncating mid-segment, so
    // the caller must resume from an offset inside a segment.
    std::vector<net::ConstBuffer> clamped;
    size_t budget = cap_;
    for (size_t i = 0; i < count && budget > 0; ++i) {
      net::ConstBuffer segment = segments[i];
      segment.size = std::min(segment.size, budget);
      budget -= segment.size;
      clamped.push_back(segment);
    }
    return inner_->try_sendv(clamped.data(), clamped.size());
  }

 private:
  std::unique_ptr<net::Connection> inner_;
  const size_t cap_;
  const int block_every_;
  const bool vectored_;
  Counters& counters_;
};

class ShortWriteTransport : public net::Transport {
 public:
  struct Config {
    size_t cap = 7;
    int block_every = 0;
    bool vectored = true;
  };

  explicit ShortWriteTransport(Config config) : config_(config) {}

  Result<std::unique_ptr<net::Listener>> listen(
      const net::Endpoint& at) override {
    auto inner = tcp_.listen(at);
    if (!inner.ok()) return inner.error();
    return Result<std::unique_ptr<net::Listener>>(
        std::make_unique<WrappingListener>(std::move(inner.value()), *this));
  }
  Result<std::unique_ptr<net::Connection>> connect(
      const net::Endpoint& to) override {
    return tcp_.connect(to);
  }
  net::WireStats stats() const override { return tcp_.stats(); }
  void reset_stats() override { tcp_.reset_stats(); }

  ShortWriteConnection::Counters counters;

 private:
  class WrappingListener : public net::Listener {
   public:
    WrappingListener(std::unique_ptr<net::Listener> inner,
                     ShortWriteTransport& owner)
        : inner_(std::move(inner)), owner_(owner) {}

    Result<std::unique_ptr<net::Connection>> accept() override {
      return wrap(inner_->accept());
    }
    Result<std::unique_ptr<net::Connection>> try_accept() override {
      return wrap(inner_->try_accept());
    }
    void close() override { inner_->close(); }
    net::Endpoint endpoint() const override { return inner_->endpoint(); }
    int native_handle() const override { return inner_->native_handle(); }
    Status set_nonblocking(bool enabled) override {
      return inner_->set_nonblocking(enabled);
    }

   private:
    Result<std::unique_ptr<net::Connection>> wrap(
        Result<std::unique_ptr<net::Connection>> accepted) {
      if (!accepted.ok()) return accepted.error();
      return Result<std::unique_ptr<net::Connection>>(
          std::make_unique<ShortWriteConnection>(
              std::move(accepted.value()), owner_.config_.cap,
              owner_.config_.block_every, owner_.config_.vectored,
              owner_.counters));
    }

    std::unique_ptr<net::Listener> inner_;
    ShortWriteTransport& owner_;
  };

  Config config_;
  net::TcpTransport tcp_;
};

Response echo_handler(const Request& request) {
  return Response::make(200, "OK", "echo:" + request.body);
}

std::unique_ptr<HttpServer> make_server(net::Transport& transport,
                                        ServerOptions options = {}) {
  auto server = std::make_unique<HttpServer>(
      transport, net::Endpoint{"127.0.0.1", 0}, echo_handler, options);
  EXPECT_TRUE(server->start().ok());
  EXPECT_TRUE(server->reactor_mode());
  return server;
}

// Receives until `count` complete responses have been framed.
std::vector<Response> receive_responses(net::Connection& connection,
                                        size_t count) {
  MessageParser parser(MessageParser::Mode::kResponse);
  std::vector<Response> responses;
  while (responses.size() < count) {
    if (auto response = parser.poll_response()) {
      responses.push_back(std::move(*response));
      continue;
    }
    if (parser.failed()) break;
    auto chunk = connection.receive(4096);
    if (!chunk.ok()) break;
    parser.feed(chunk.value());
  }
  return responses;
}

TEST(SendvTest, LargeResponseSurvivesShortVectoredWrites) {
  // 61-byte gathers against a multi-kilobyte response: nearly every write
  // ends mid-segment, so delivery proves the iovec cursor advances
  // correctly both across and inside segments.
  ShortWriteTransport transport({.cap = 61, .block_every = 0});
  auto server = make_server(transport);

  std::string body(8 * 1024, '\0');
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<char>('a' + (i % 26));
  }
  net::TcpTransport client_side;
  HttpClient client(client_side, server->endpoint());
  auto response = client.post("/svc", body);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body, "echo:" + body);

  // The response needed many short gathers, and both of its segments
  // (head + body) retired through the vectored path.
  EXPECT_GT(server->sendv_batches(), body.size() / 61 / 2);
  EXPECT_GE(server->sendv_segments(), 2u);
  EXPECT_GE(server->loop_snapshot(0).bytes_written, body.size());
}

TEST(SendvTest, SyntheticWouldBlockRearmsWriteInterest) {
  // Every other gather reports kWouldBlock without writing: the connection
  // must arm write interest and resume on the next readiness event, every
  // time, or the response never finishes.
  ShortWriteTransport transport({.cap = 97, .block_every = 2});
  auto server = make_server(transport);

  std::string body(4 * 1024, 'x');
  net::TcpTransport client_side;
  HttpClient client(client_side, server->endpoint());
  auto response = client.post("/svc", body);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body, "echo:" + body);
  EXPECT_GE(transport.counters.synthetic_blocks.load(), 1u);
}

TEST(SendvTest, PipelinedResponsesStayOrderedUnderShortWrites) {
  // Two requests land before any response bytes move; with short gathers
  // the second response is queued while the first is still mid-flight, so
  // ordering proves the outbox appends and the completion marks fire in
  // FIFO order.
  ShortWriteTransport transport({.cap = 31, .block_every = 3});
  auto server = make_server(transport);

  net::TcpTransport client_side;
  auto connection = client_side.connect(server->endpoint());
  ASSERT_TRUE(connection.ok());
  Request a, b;
  a.target = b.target = "/svc";
  a.body = std::string(512, 'A');
  b.body = std::string(512, 'B');
  ASSERT_TRUE(connection.value()->send(a.serialize() + b.serialize()).ok());
  auto responses = receive_responses(*connection.value(), 2);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].body, "echo:" + a.body);
  EXPECT_EQ(responses[1].body, "echo:" + b.body);
  EXPECT_EQ(server->requests_served(), 2u);
}

TEST(SendvTest, NonVectoredTransportFallsBackToCoalescedOutbox) {
  // supports_sendv() == false: the connection must take the coalesced
  // string-outbox path (and still respect the short-write cap on
  // try_send), with the sendv counters untouched.
  ShortWriteTransport transport({.cap = 53, .block_every = 0,
                                 .vectored = false});
  auto server = make_server(transport);

  std::string body(2 * 1024, 'y');
  net::TcpTransport client_side;
  HttpClient client(client_side, server->endpoint());
  auto response = client.post("/svc", body);
  ASSERT_TRUE(response.ok()) << response.error().to_string();
  EXPECT_EQ(response.value().body, "echo:" + body);
  EXPECT_EQ(server->sendv_batches(), 0u);
  EXPECT_EQ(transport.counters.sendv_calls.load(), 0u);
}

TEST(SendvTest, ShrinkDrainedOutboxReleasesLargeCapacity) {
  std::string outbox;
  outbox.resize(1 << 20);
  detail::shrink_drained_outbox(outbox, 64 * 1024);
  EXPECT_TRUE(outbox.empty());
  EXPECT_LT(outbox.capacity(), size_t{1} << 20);

  // Small buffers keep their capacity: the retain cap exists so the
  // steady-state path never churns the allocator.
  std::string small;
  small.resize(1024);
  const size_t kept = small.capacity();
  detail::shrink_drained_outbox(small, 64 * 1024);
  EXPECT_TRUE(small.empty());
  EXPECT_EQ(small.capacity(), kept);
}

}  // namespace
}  // namespace spi::http
