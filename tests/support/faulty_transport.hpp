// Compatibility shim: FaultyTransport/FaultPlan were promoted from this
// test-support tree into the product at net/faulty_transport.hpp so
// benches, examples, and chaos CI can inject faults against release
// builds. Existing tests keep their spi::test spelling.
#pragma once

#include "net/faulty_transport.hpp"

namespace spi::test {

using FaultPlan = net::FaultPlan;
using FaultyTransport = net::FaultyTransport;

}  // namespace spi::test
