// Test-only transport decorator that injects deterministic faults between
// the SPI stack and a real inner transport: refused connects, connections
// severed after N bytes, and single-byte corruption. Used by the
// failure-injection suite to prove every layer surfaces transport failure
// as an error instead of hanging, crashing, or fabricating data.
#pragma once

#include <atomic>
#include <memory>

#include "net/transport.hpp"

namespace spi::test {

struct FaultPlan {
  /// Fail the next `refuse_connects` connect() calls.
  int refuse_connects = 0;
  /// Sever each connection's outbound stream after this many bytes
  /// (0 = never). The peer sees a clean close mid-message.
  size_t sever_after_bytes = 0;
  /// Flip the lowest bit of the byte at this absolute outbound offset
  /// (npos = never). Corrupts exactly one byte of one connection.
  size_t corrupt_at = npos;

  static constexpr size_t npos = static_cast<size_t>(-1);
};

class FaultyTransport final : public net::Transport {
 public:
  FaultyTransport(net::Transport& inner, FaultPlan plan)
      : inner_(inner), plan_(plan) {}

  Result<std::unique_ptr<net::Listener>> listen(
      const net::Endpoint& at) override {
    return inner_.listen(at);  // faults are injected client-side
  }

  Result<std::unique_ptr<net::Connection>> connect(
      const net::Endpoint& to) override {
    if (refused_ < plan_.refuse_connects) {
      ++refused_;
      return Error(ErrorCode::kConnectionFailed, "injected connect failure");
    }
    auto connection = inner_.connect(to);
    if (!connection.ok()) return connection.error();
    return std::unique_ptr<net::Connection>(
        std::make_unique<FaultyConnection>(std::move(connection).value(),
                                           plan_));
  }

  net::WireStats stats() const override { return inner_.stats(); }
  void reset_stats() override { inner_.reset_stats(); }

 private:
  class FaultyConnection final : public net::Connection {
   public:
    FaultyConnection(std::unique_ptr<net::Connection> inner, FaultPlan plan)
        : inner_(std::move(inner)), plan_(plan) {}

    Status send(std::string_view bytes) override {
      if (severed_) {
        return Error(ErrorCode::kConnectionClosed, "injected sever");
      }
      std::string mutated;
      std::string_view to_send = bytes;

      if (plan_.corrupt_at != FaultPlan::npos &&
          plan_.corrupt_at >= sent_ && plan_.corrupt_at < sent_ + bytes.size()) {
        mutated = std::string(bytes);
        mutated[plan_.corrupt_at - sent_] ^= 0x01;
        to_send = mutated;
      }

      if (plan_.sever_after_bytes != 0 &&
          sent_ + to_send.size() > plan_.sever_after_bytes) {
        size_t allowed = plan_.sever_after_bytes > sent_
                             ? plan_.sever_after_bytes - sent_
                             : 0;
        if (allowed > 0) {
          (void)inner_->send(to_send.substr(0, allowed));
          sent_ += allowed;
        }
        severed_ = true;
        inner_->close();
        return Error(ErrorCode::kConnectionClosed, "injected sever");
      }

      Status status = inner_->send(to_send);
      if (status.ok()) sent_ += to_send.size();
      return status;
    }

    Result<std::string> receive(size_t max_bytes) override {
      return inner_->receive(max_bytes);
    }

    void close() override { inner_->close(); }
    void abort() override { inner_->abort(); }

    Status set_receive_timeout(Duration timeout) override {
      return inner_->set_receive_timeout(timeout);
    }

   private:
    std::unique_ptr<net::Connection> inner_;
    FaultPlan plan_;
    size_t sent_ = 0;
    bool severed_ = false;
  };

  net::Transport& inner_;
  FaultPlan plan_;
  std::atomic<int> refused_{0};
};

}  // namespace spi::test
