#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "concurrency/thread_pool.hpp"
#include "concurrency/wait_group.hpp"

namespace spi {
namespace {

TEST(ThreadPoolTest, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool(0), SpiError);
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4, "test");
  std::atomic<int> counter{0};
  WaitGroup pending;
  pending.add(100);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&] {
      ++counter;
      pending.done();
    }));
  }
  pending.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4, "test");
  CountdownLatch rendezvous(4);
  WaitGroup pending;
  pending.add(4);
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      rendezvous.count_down();
      // Only completes if all 4 workers reach this point together.
      EXPECT_TRUE(rendezvous.wait_for(std::chrono::seconds(5)));
      pending.done();
    });
  }
  EXPECT_TRUE(pending.wait_for(std::chrono::seconds(5)));
}

TEST(ThreadPoolTest, ShutdownDrainsBacklog) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2, "drain");
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++executed;
      });
    }
  }  // destructor shuts down and drains
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1, "closed");
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
  // Idempotent shutdown.
  pool.shutdown();
}

TEST(ThreadPoolTest, TaskExceptionDoesNotKillWorker) {
  ThreadPool pool(1, "thrower");
  pool.submit([] { throw std::runtime_error("boom"); });
  std::atomic<bool> ran{false};
  WaitGroup pending;
  pending.add(1);
  pool.submit([&] {
    ran = true;
    pending.done();
  });
  EXPECT_TRUE(pending.wait_for(std::chrono::seconds(5)));
  EXPECT_TRUE(ran.load());
  // completed_tasks ticks after the task body returns (the WaitGroup fires
  // inside it), so give the worker a beat to finish the accounting.
  for (int i = 0; i < 5000 && pool.completed_tasks() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.completed_tasks(), 2u);
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesValue) {
  ThreadPool pool(2, "futures");
  auto future = pool.submit_with_result([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesException) {
  ThreadPool pool(1, "futures");
  auto future = pool.submit_with_result(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitWithResultAfterShutdownThrows) {
  ThreadPool pool(1, "closed");
  pool.shutdown();
  EXPECT_THROW(pool.submit_with_result([] { return 1; }), SpiError);
}

TEST(ThreadPoolTest, ReportsThreadCountAndName) {
  ThreadPool pool(3, "named");
  EXPECT_EQ(pool.thread_count(), 3u);
  EXPECT_EQ(pool.name(), "named");
}

TEST(ThreadPoolTest, QueueDepthReturnsToZeroAfterDrain) {
  ThreadPool pool(1, "depth");
  CountdownLatch release(1);
  WaitGroup pending;
  pending.add(9);
  pool.submit([&] {
    release.wait();
    pending.done();
  });
  // Wait until the worker holds the blocker so the backlog count is exact.
  while (pool.active_workers() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] { pending.done(); });
  }
  EXPECT_EQ(pool.queue_depth(), 8u);
  EXPECT_EQ(pool.active_workers(), 1u);

  release.count_down();
  EXPECT_TRUE(pending.wait_for(std::chrono::seconds(5)));
  // Drained: depth back to 0, the worker goes idle.
  EXPECT_EQ(pool.queue_depth(), 0u);
  while (pool.active_workers() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.completed_tasks(), 9u);
}

TEST(ThreadPoolTest, WaitHistogramRecordsQueueWait) {
  ThreadPool pool(1, "waits");
  LatencyHistogram waits;
  pool.set_wait_histogram(&waits);

  CountdownLatch release(1);
  WaitGroup pending;
  pending.add(5);
  pool.submit([&] {
    release.wait();
    pending.done();
  });
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] { pending.done(); });
  }
  release.count_down();
  EXPECT_TRUE(pending.wait_for(std::chrono::seconds(5)));
  // Every task submitted while the histogram was bound got a wait sample.
  EXPECT_EQ(waits.count(), 5u);

  // Unbinding stops the clock reads; counts stay put.
  pool.set_wait_histogram(nullptr);
  WaitGroup last;
  last.add(1);
  pool.submit([&] { last.done(); });
  EXPECT_TRUE(last.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(waits.count(), 5u);
}

TEST(WaitGroupTest, DoneWithoutAddThrows) {
  WaitGroup group;
  EXPECT_THROW(group.done(), std::logic_error);
}

TEST(WaitGroupTest, WaitReturnsImmediatelyAtZero) {
  WaitGroup group;
  group.wait();  // must not hang
  EXPECT_EQ(group.count(), 0u);
}

TEST(WaitGroupTest, WaitForTimesOutWhenOutstanding) {
  WaitGroup group;
  group.add(1);
  EXPECT_FALSE(group.wait_for(std::chrono::milliseconds(10)));
  group.done();
  EXPECT_TRUE(group.wait_for(std::chrono::milliseconds(10)));
}

TEST(CountdownLatchTest, ExtraCountDownsAreIgnored) {
  CountdownLatch latch(1);
  latch.count_down();
  latch.count_down();  // no underflow
  latch.wait();
}

}  // namespace
}  // namespace spi
