#include "concurrency/adaptive_limiter.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace spi {
namespace {

AdaptiveLimiterOptions small_options() {
  AdaptiveLimiterOptions options;
  options.min_limit = 1;
  options.max_limit = 16;
  options.initial_limit = 4;
  options.window = 4;
  options.degrade_ratio = 1.5;
  options.backoff_ratio = 0.5;
  options.baseline_alpha = 0.2;
  return options;
}

// Feed one full window of identical latencies.
void feed_window(AdaptiveLimiter& limiter, double latency_us) {
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(limiter.try_acquire());
    limiter.release(latency_us);
  }
}

TEST(AdaptiveLimiterTest, EnforcesLimitAndReleases) {
  AdaptiveLimiterOptions options = small_options();
  options.initial_limit = 2;
  AdaptiveLimiter limiter(options);
  EXPECT_TRUE(limiter.try_acquire());
  EXPECT_TRUE(limiter.try_acquire());
  EXPECT_FALSE(limiter.try_acquire()) << "third acquire must shed at limit 2";
  EXPECT_EQ(limiter.in_flight(), 2u);
  limiter.release_unsampled();
  EXPECT_TRUE(limiter.try_acquire());
}

TEST(AdaptiveLimiterTest, FirstWindowSeedsBaselineWithoutAdjusting) {
  AdaptiveLimiter limiter(small_options());
  EXPECT_EQ(limiter.baseline_us(), 0.0);
  feed_window(limiter, 100.0);
  EXPECT_EQ(limiter.baseline_us(), 100.0);
  EXPECT_EQ(limiter.limit(), 4u);
}

TEST(AdaptiveLimiterTest, HealthyLatencyGrowsLimitAdditively) {
  AdaptiveLimiter limiter(small_options());
  feed_window(limiter, 100.0);  // seed
  feed_window(limiter, 100.0);
  EXPECT_EQ(limiter.limit(), 5u);
  feed_window(limiter, 105.0);  // within degrade_ratio of baseline
  EXPECT_EQ(limiter.limit(), 6u);
}

TEST(AdaptiveLimiterTest, DegradedLatencyBacksOffMultiplicatively) {
  AdaptiveLimiter limiter(small_options());
  feed_window(limiter, 100.0);  // baseline = 100
  feed_window(limiter, 1000.0);  // 10x: well past 1.5x baseline
  EXPECT_EQ(limiter.limit(), 2u);  // 4 * 0.5
  feed_window(limiter, 1000.0);
  EXPECT_EQ(limiter.limit(), 1u);  // floor min_limit
  feed_window(limiter, 1000.0);
  EXPECT_EQ(limiter.limit(), 1u) << "never below min_limit";
}

TEST(AdaptiveLimiterTest, CongestionCannotInflateBaseline) {
  AdaptiveLimiter limiter(small_options());
  feed_window(limiter, 100.0);  // baseline = 100
  for (int i = 0; i < 10; ++i) feed_window(limiter, 10'000.0);
  // Each window's contribution clamps at degrade_ratio x baseline, so the
  // baseline drifts at most geometrically at 1 + alpha*(degrade_ratio-1)
  // = 1.1x per window (100 * 1.1^10 ~= 259) instead of snapping to the
  // offered 10'000 — a long stall cannot teach the limiter that slow is
  // normal.
  EXPECT_LT(limiter.baseline_us(), 300.0);
}

TEST(AdaptiveLimiterTest, RecoveryAfterBackoff) {
  AdaptiveLimiter limiter(small_options());
  feed_window(limiter, 100.0);
  feed_window(limiter, 1000.0);  // back off to 2
  ASSERT_EQ(limiter.limit(), 2u);
  for (int i = 0; i < 20; ++i) feed_window(limiter, 100.0);
  EXPECT_EQ(limiter.limit(), 16u) << "healthy windows climb back to max";
}

TEST(AdaptiveLimiterTest, LimitNeverExceedsMax) {
  AdaptiveLimiterOptions options = small_options();
  options.max_limit = 5;
  AdaptiveLimiter limiter(options);
  for (int i = 0; i < 20; ++i) feed_window(limiter, 50.0);
  EXPECT_EQ(limiter.limit(), 5u);
}

TEST(AdaptiveLimiterTest, GarbageSamplesIgnored) {
  AdaptiveLimiter limiter(small_options());
  ASSERT_TRUE(limiter.try_acquire());
  limiter.release(-5.0);  // negative: dropped
  ASSERT_TRUE(limiter.try_acquire());
  limiter.release(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(limiter.baseline_us(), 0.0) << "no window should have closed";
  EXPECT_EQ(limiter.in_flight(), 0u);
}

TEST(AdaptiveLimiterTest, ConcurrentAcquireNeverOversubscribes) {
  AdaptiveLimiterOptions options = small_options();
  options.initial_limit = 3;
  options.window = 1'000'000;  // no adjustments during the race
  AdaptiveLimiter limiter(options);
  std::atomic<size_t> peak{0};
  std::atomic<size_t> current{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 2000; ++i) {
          if (!limiter.try_acquire()) continue;
          size_t now = current.fetch_add(1) + 1;
          size_t seen = peak.load();
          while (now > seen && !peak.compare_exchange_weak(seen, now)) {
          }
          current.fetch_sub(1);
          limiter.release(10.0);
        }
      });
    }
  }
  EXPECT_LE(peak.load(), 3u);
  EXPECT_EQ(limiter.in_flight(), 0u);
}

}  // namespace
}  // namespace spi
