// TimerWheel unit coverage: schedule/fire rounding, cancel, hashed-slot
// revolutions (the "cascade" case: entries sharing a bucket but due on
// different revolutions), until_next, reentrant callbacks — plus the
// threaded TimerService wrapper.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <vector>

#include "concurrency/timer_wheel.hpp"

namespace spi {
namespace {

using namespace std::chrono_literals;

TimePoint at(Duration offset) { return TimePoint{} + offset; }

TEST(TimerWheelTest, FiresAfterDelayNeverBefore) {
  TimerWheel wheel(5ms, 16);
  int fired = 0;
  wheel.schedule(at(0ms), 12ms, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(at(0ms)), 0u);
  EXPECT_EQ(wheel.advance(at(11ms)), 0u);  // 12ms rounds UP to tick 3 = 15ms
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.advance(at(15ms)), 1u);
  EXPECT_EQ(fired, 1);
  // One-shot: it never fires again.
  EXPECT_EQ(wheel.advance(at(200ms)), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, ZeroAndNegativeDelaysFireOnNextTick) {
  TimerWheel wheel(5ms, 16);
  int fired = 0;
  wheel.schedule(at(0ms), 0ms, [&] { ++fired; });
  wheel.schedule(at(0ms), -3ms, [&] { ++fired; });
  EXPECT_EQ(wheel.advance(at(5ms)), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel(5ms, 16);
  int fired = 0;
  auto id = wheel.schedule(at(0ms), 10ms, [&] { ++fired; });
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_EQ(wheel.advance(at(100ms)), 0u);
  EXPECT_EQ(fired, 0);
  // Cancelling again (or cancelling nonsense) reports false.
  EXPECT_FALSE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(TimerWheel::kInvalidTimer));
}

TEST(TimerWheelTest, CancelOneOfManyInSameSlot) {
  TimerWheel wheel(5ms, 4);
  std::vector<int> fired;
  // All three hash into the same bucket (due ticks 2, 6, 10 mod 4 = 2).
  wheel.schedule(at(0ms), 10ms, [&] { fired.push_back(1); });
  auto second = wheel.schedule(at(0ms), 30ms, [&] { fired.push_back(2); });
  wheel.schedule(at(0ms), 50ms, [&] { fired.push_back(3); });
  EXPECT_TRUE(wheel.cancel(second));
  wheel.advance(at(60ms));
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(TimerWheelTest, LaterRevolutionStaysPutUntilItsTurn) {
  // The hashed-wheel "cascade" behaviour: two timers in one bucket, one
  // due this revolution and one due slots*tick later. The second must
  // survive the first's collection untouched.
  TimerWheel wheel(5ms, 4);  // revolution = 20ms
  std::vector<int> fired;
  wheel.schedule(at(0ms), 10ms, [&] { fired.push_back(1); });   // tick 2
  wheel.schedule(at(0ms), 30ms, [&] { fired.push_back(2); });   // tick 6
  wheel.advance(at(10ms));
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(at(25ms));  // tick 5: bucket revisited, entry not yet due
  EXPECT_EQ(fired, (std::vector<int>{1}));
  wheel.advance(at(30ms));
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(TimerWheelTest, FiresInTickOrderAcrossSlots) {
  TimerWheel wheel(5ms, 8);
  std::vector<int> fired;
  wheel.schedule(at(0ms), 25ms, [&] { fired.push_back(3); });
  wheel.schedule(at(0ms), 5ms, [&] { fired.push_back(1); });
  wheel.schedule(at(0ms), 15ms, [&] { fired.push_back(2); });
  wheel.advance(at(100ms));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelTest, UntilNextReflectsEarliestPending) {
  TimerWheel wheel(5ms, 16);
  EXPECT_FALSE(wheel.until_next(at(0ms)).has_value());
  wheel.schedule(at(0ms), 40ms, [] {});
  wheel.schedule(at(0ms), 10ms, [] {});
  auto next = wheel.until_next(at(0ms));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 10ms);
  wheel.advance(at(10ms));
  next = wheel.until_next(at(10ms));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, 30ms);
  wheel.advance(at(40ms));
  EXPECT_FALSE(wheel.until_next(at(40ms)).has_value());
}

TEST(TimerWheelTest, CallbackMayScheduleReentrantly) {
  TimerWheel wheel(5ms, 16);
  int chained = 0;
  wheel.schedule(at(0ms), 5ms, [&] {
    wheel.schedule(at(5ms), 5ms, [&] { ++chained; });
  });
  wheel.advance(at(5ms));
  EXPECT_EQ(chained, 0);
  wheel.advance(at(10ms));
  EXPECT_EQ(chained, 1);
}

TEST(TimerWheelTest, CallbackMayCancelReentrantly) {
  TimerWheel wheel(5ms, 16);
  int fired = 0;
  TimerWheel::TimerId victim =
      wheel.schedule(at(0ms), 25ms, [&] { ++fired; });
  wheel.schedule(at(0ms), 5ms, [&] { wheel.cancel(victim); });
  wheel.advance(at(5ms));  // fires the canceller
  EXPECT_EQ(wheel.size(), 0u);
  wheel.advance(at(100ms));
  EXPECT_EQ(fired, 0);
}

TEST(TimerWheelTest, SameBatchCancelCannotRetractCollectedTimer) {
  // advance() is collect-then-fire: once a tick span is collected, a
  // cancel issued by one of its callbacks cannot retract another timer
  // in the same batch. Drivers absorb such late fires with stale guards
  // (ConnectionFsm::on_timer) or generation counters (BlockingConn).
  TimerWheel wheel(5ms, 16);
  int fired = 0;
  TimerWheel::TimerId victim =
      wheel.schedule(at(0ms), 25ms, [&] { ++fired; });
  wheel.schedule(at(0ms), 5ms, [&] { wheel.cancel(victim); });
  wheel.advance(at(100ms));  // one advance spans both ticks
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, SurvivesLargeClockLeap) {
  // A huge gap between advances (test-clock leap, suspended laptop) must
  // not walk empty ticks one by one.
  TimerWheel wheel(1ms, 32);
  int fired = 0;
  wheel.schedule(at(0ms), 5ms, [&] { ++fired; });
  wheel.advance(at(std::chrono::hours(24)));
  EXPECT_EQ(fired, 1);
  // And scheduling after the leap still lands on future ticks.
  wheel.schedule(at(std::chrono::hours(24)), 2ms, [&] { ++fired; });
  wheel.advance(at(std::chrono::hours(24) + 2ms));
  EXPECT_EQ(fired, 2);
}

TEST(TimerWheelTest, ManyTimersAcrossRevolutions) {
  TimerWheel wheel(1ms, 8);  // tiny wheel: lots of hash collisions
  std::atomic<int> fired{0};
  constexpr int kTimers = 500;
  for (int i = 0; i < kTimers; ++i) {
    wheel.schedule(at(0ms), std::chrono::milliseconds(1 + i % 97),
                   [&] { fired.fetch_add(1); });
  }
  EXPECT_EQ(wheel.size(), static_cast<size_t>(kTimers));
  for (int step = 0; step <= 100; ++step) {
    wheel.advance(at(std::chrono::milliseconds(step)));
  }
  EXPECT_EQ(fired.load(), kTimers);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerServiceTest, FiresOnServiceThread) {
  TimerService service("test-timer", 1ms, 64);
  std::atomic<bool> fired{false};
  service.schedule(5ms, [&] { fired.store(true); });
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(service.size(), 0u);
}

TEST(TimerServiceTest, CancelUsuallyPreventsFiring) {
  TimerService service("test-timer", 1ms, 64);
  std::atomic<int> fired{0};
  auto id = service.schedule(500ms, [&] { fired.fetch_add(1); });
  EXPECT_TRUE(service.cancel(id));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(fired.load(), 0);
}

TEST(TimerServiceTest, StopDropsPendingTimers) {
  std::atomic<int> fired{0};
  {
    TimerService service("test-timer", 1ms, 64);
    service.schedule(10s, [&] { fired.fetch_add(1); });
    service.stop();
  }
  EXPECT_EQ(fired.load(), 0);
}

TEST(TimerServiceTest, ScheduleAfterStopIsRejected) {
  TimerService service("test-timer");
  service.stop();
  EXPECT_EQ(service.schedule(1ms, [] {}), TimerWheel::kInvalidTimer);
}

}  // namespace
}  // namespace spi
