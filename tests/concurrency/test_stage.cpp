#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "concurrency/stage.hpp"
#include "concurrency/wait_group.hpp"

namespace spi {
namespace {

TEST(StageTest, RejectsBadConstruction) {
  EXPECT_THROW(Stage<int>("s", 0, [](int) {}), SpiError);
  EXPECT_THROW(Stage<int>("s", 1, nullptr), SpiError);
}

TEST(StageTest, ProcessesAcceptedEvents) {
  std::atomic<int> sum{0};
  WaitGroup pending;
  pending.add(10);
  Stage<int> stage("adder", 2, [&](int v) {
    sum += v;
    pending.done();
  });
  for (int i = 1; i <= 10; ++i) {
    EXPECT_TRUE(stage.accept(i));
  }
  pending.wait();
  EXPECT_EQ(sum.load(), 55);
  auto stats = stage.stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(StageTest, ShutdownDrainsBacklogAndRejectsNewEvents) {
  std::atomic<int> processed{0};
  Stage<int> stage("drain", 1, [&](int) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    ++processed;
  });
  for (int i = 0; i < 20; ++i) stage.accept(i);
  stage.shutdown();
  EXPECT_EQ(processed.load(), 20);
  EXPECT_FALSE(stage.accept(99));
  EXPECT_EQ(stage.stats().rejected, 1u);
}

TEST(StageTest, HandlerExceptionsAreCountedNotFatal) {
  WaitGroup pending;
  pending.add(3);
  Stage<int> stage("thrower", 1, [&](int v) {
    struct Guard {
      WaitGroup& group;
      ~Guard() { group.done(); }
    } guard{pending};
    if (v == 1) throw std::runtime_error("bad event");
  });
  stage.accept(0);
  stage.accept(1);
  stage.accept(2);
  pending.wait();
  // processed ticks after the handler returns (the guard fires inside it),
  // so give the worker a beat to finish the accounting.
  for (int i = 0; i < 5000 && stage.stats().processed < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto stats = stage.stats();
  EXPECT_EQ(stats.processed, 3u);
  EXPECT_EQ(stats.handler_errors, 1u);
}

TEST(StageTest, TryAcceptFailsWhenFull) {
  CountdownLatch release(1);
  Stage<int> stage("bounded", 1, [&](int) { release.wait(); },
                   /*queue_capacity=*/1);
  // First event occupies the worker; second fills the queue.
  ASSERT_TRUE(stage.try_accept(1));
  // Wait until the worker has picked up event 1 so the queue is empty.
  while (stage.backlog() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(stage.try_accept(2));
  EXPECT_FALSE(stage.try_accept(3));
  EXPECT_EQ(stage.stats().rejected, 1u);
  release.count_down();
}

TEST(StageTest, EventsFanOutAcrossWorkers) {
  std::mutex mutex;
  std::set<std::thread::id> workers;
  CountdownLatch rendezvous(4);
  WaitGroup pending;
  pending.add(4);
  Stage<int> stage("fan", 4, [&](int) {
    {
      std::lock_guard lock(mutex);
      workers.insert(std::this_thread::get_id());
    }
    rendezvous.count_down();
    EXPECT_TRUE(rendezvous.wait_for(std::chrono::seconds(5)));
    pending.done();
  });
  for (int i = 0; i < 4; ++i) stage.accept(i);
  EXPECT_TRUE(pending.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(workers.size(), 4u);
}

TEST(StageTest, QueueDepthAndActiveWorkersSettleToZero) {
  CountdownLatch release(1);
  WaitGroup pending;
  pending.add(5);
  Stage<int> stage("telemetry", 1, [&](int) {
    release.wait();
    pending.done();
  });
  for (int i = 0; i < 5; ++i) stage.accept(i);
  // The single worker parks on the latch with the rest queued behind it.
  while (stage.active_workers() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stage.queue_depth(), 4u);
  EXPECT_EQ(stage.active_workers(), 1u);

  release.count_down();
  EXPECT_TRUE(pending.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(stage.queue_depth(), 0u);
  while (stage.active_workers() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stage.stats().processed, 5u);
}

TEST(StageTest, MoveOnlyEventsSupported) {
  WaitGroup pending;
  pending.add(1);
  Stage<std::unique_ptr<int>> stage("move", 1,
                                    [&](std::unique_ptr<int> event) {
    EXPECT_EQ(*event, 5);
    pending.done();
  });
  stage.accept(std::make_unique<int>(5));
  pending.wait();
}

}  // namespace
}  // namespace spi
