#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "concurrency/blocking_queue.hpp"

namespace spi {
namespace {

TEST(BlockingQueueTest, PushPopSingleThread) {
  BlockingQueue<int> queue;
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BlockingQueueTest, TryPopOnEmptyReturnsNullopt) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(BlockingQueueTest, TryPushRespectsCapacity) {
  BlockingQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  queue.pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BlockingQueueTest, CloseDrainsBacklogThenSignals) {
  BlockingQueue<int> queue;
  queue.push(7);
  queue.push(8);
  queue.close();
  EXPECT_FALSE(queue.push(9));  // rejected after close
  EXPECT_EQ(queue.pop(), 7);    // backlog still drains
  EXPECT_EQ(queue.pop(), 8);
  EXPECT_FALSE(queue.pop().has_value());  // closed and drained
  EXPECT_TRUE(queue.closed());
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> queue;
  auto result = queue.pop_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(result.has_value());
}

TEST(BlockingQueueTest, PopForReturnsAvailableItem) {
  BlockingQueue<int> queue;
  queue.push(5);
  EXPECT_EQ(queue.pop_for(std::chrono::milliseconds(10)), 5);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> queue;
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.push(99);
  });
  EXPECT_EQ(queue.pop(), 99);  // must block, not spin-fail
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilSpace) {
  BlockingQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::jthread producer([&] {
    queue.push(2);  // blocks until the consumer makes room
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BlockingQueueTest, CloseWakesBlockedConsumers) {
  BlockingQueue<int> queue;
  std::atomic<int> woken{0};
  std::vector<std::jthread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      EXPECT_FALSE(queue.pop().has_value());
      ++woken;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumers.clear();  // join
  EXPECT_EQ(woken.load(), 4);
}

TEST(BlockingQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  BlockingQueue<int> queue(64);

  std::atomic<long long> sum{0};
  std::atomic<int> received{0};
  std::vector<std::jthread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum += *item;
        ++received;
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(queue.push(p * kPerProducer + i));
        }
      });
    }
  }  // producers join
  queue.close();
  threads.clear();  // consumers join

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BlockingQueueTest, MoveOnlyItemsSupported) {
  BlockingQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(31));
  auto item = queue.pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 31);
}

}  // namespace
}  // namespace spi
