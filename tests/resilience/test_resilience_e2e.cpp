// End-to-end resilience: deadline shedding at both server stages, retry
// with partial-batch re-pack (only failed sub-calls replayed, proven by
// server-side execution counters), idempotency gating, circuit-breaker
// fast-fail and half-open recovery, and seeded chaos runs driven by the
// SPI_CHAOS_FAULT / SPI_CHAOS_SEED environment (the CI chaos matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>

#include "benchsupport/workload.hpp"
#include "common/clock.hpp"
#include "core/client.hpp"
#include "core/params.hpp"
#include "core/server.hpp"
#include "http/message.hpp"
#include "net/faulty_transport.hpp"
#include "net/sim_transport.hpp"
#include "resilience/circuit_breaker.hpp"
#include "services/echo.hpp"
#include "soap/envelope.hpp"

namespace spi::core {
namespace {

using net::FaultPlan;
using net::FaultyTransport;
using soap::Value;

class ResilienceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    services::register_echo_service(registry_);
    // Counting service: every handler records that it actually executed,
    // which is how the tests below PROVE what was and was not replayed.
    ServiceBinder binder(registry_, "CountService");
    binder.bind_idempotent("Ok", [this](const soap::Struct&) -> Result<Value> {
      ok_runs_.fetch_add(1);
      return Value("ok");
    });
    // Fails its first invocation with CapacityExceeded — a fault the
    // server only emits for work it did NOT execute — then succeeds.
    binder.bind(
        "Flaky",
        [this](const soap::Struct&) -> Result<Value> {
          flaky_runs_.fetch_add(1);
          if (flaky_failures_left_.fetch_sub(1) > 0) {
            return Error(ErrorCode::kCapacityExceeded, "induced rejection");
          }
          return Value("recovered");
        },
        {true});
    binder.bind("Mutate", [this](const soap::Struct&) -> Result<Value> {
      mutate_runs_.fetch_add(1);
      return Value("mutated");
    });

    server_ = std::make_unique<SpiServer>(inner_, net::Endpoint{"server", 80},
                                          registry_);
    ASSERT_TRUE(server_->start().ok());
  }

  std::unique_ptr<SpiClient> faulty_client(FaultPlan plan,
                                           ClientOptions options = {}) {
    faulty_ = std::make_unique<FaultyTransport>(inner_, plan);
    return std::make_unique<SpiClient>(*faulty_, server_->endpoint(),
                                       std::move(options));
  }

  ClientOptions retrying_options(int max_attempts) {
    ClientOptions options;
    options.retry.max_attempts = max_attempts;
    options.retry.initial_backoff = std::chrono::milliseconds(1);
    options.retry.idempotent = registry_.idempotency_predicate();
    return options;
  }

  void expect_server_still_healthy() {
    SpiClient clean(inner_, server_->endpoint());
    auto outcome =
        clean.call("EchoService", "Echo", {{"data", Value("probe")}});
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
    EXPECT_EQ(outcome.value().as_string(), "probe");
  }

  /// POSTs a raw envelope and reads the full HTTP response (connection
  /// closed by the server). Bypasses SpiClient so expired deadlines reach
  /// the server instead of being failed client-side.
  std::string raw_post(std::string body) {
    http::Request request;
    request.method = "POST";
    request.target = "/spi";
    request.headers.set("Content-Type", "text/xml");
    request.headers.set("Connection", "close");
    request.body = std::move(body);
    auto connection = inner_.connect(server_->endpoint());
    EXPECT_TRUE(connection.ok());
    if (!connection.ok()) return {};
    EXPECT_TRUE(connection.value()->send(request.serialize()).ok());
    std::string response;
    while (true) {
      auto bytes = connection.value()->receive(64 * 1024);
      if (!bytes.ok()) break;
      response += bytes.value();
    }
    return response;
  }

  net::SimTransport inner_;
  std::unique_ptr<FaultyTransport> faulty_;
  ServiceRegistry registry_;
  std::unique_ptr<SpiServer> server_;
  std::atomic<int> ok_runs_{0};
  std::atomic<int> flaky_runs_{0};
  std::atomic<int> mutate_runs_{0};
  std::atomic<int> flaky_failures_left_{1};
};

// --- deadline shedding ------------------------------------------------------

TEST_F(ResilienceE2eTest, ExpiredDeadlineIsShedBeforeParse) {
  std::string envelope = soap::build_envelope(
      "<spi:Echo/>",
      {"<spi:Deadline><spi:RemainingUs>-5000</spi:RemainingUs>"
       "</spi:Deadline>"});
  std::string response = raw_post(std::move(envelope));
  EXPECT_NE(response.find("504"), std::string::npos) << response;
  EXPECT_NE(response.find("DeadlineExceeded"), std::string::npos) << response;
  EXPECT_EQ(server_->stats().deadline_shed_pre_parse, 1u);
  EXPECT_EQ(server_->stats().dispatcher.deadline_shed, 0u)
      << "shed before parse, not at execute";
  expect_server_still_healthy();
}

TEST_F(ResilienceE2eTest, DeadlineExpiringMidBatchShedsQueuedCalls) {
  // One application thread: the second Delay call sits queued behind the
  // first until long after the 60ms budget is gone; the execute stage must
  // shed it instead of running it.
  ServerOptions options;
  options.application_threads = 1;
  SpiServer narrow(inner_, net::Endpoint{"narrow", 80}, registry_, options);
  ASSERT_TRUE(narrow.start().ok());

  ClientOptions client_options;
  client_options.call_timeout = std::chrono::milliseconds(60);
  SpiClient client(inner_, narrow.endpoint(), client_options);
  std::vector<ServiceCall> calls = {
      make_call("EchoService", "Delay", {{"milliseconds", Value(250)}}),
      make_call("EchoService", "Delay", {{"milliseconds", Value(250)}}),
  };
  // The client's receive timeout is clamped to the deadline budget, so the
  // call fails locally; what matters is the server-side shed.
  (void)client.call_packed(calls);
  Stopwatch waited;
  while (narrow.stats().dispatcher.deadline_shed == 0 &&
         waited.elapsed_ms() < 3000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(narrow.stats().dispatcher.deadline_shed, 1u);
  narrow.stop();
}

TEST_F(ResilienceE2eTest, ClientFailsFastWhenDeadlineAlreadySpent) {
  // An ambient (caller-inherited) deadline that is already expired: the
  // client must fail locally before writing a byte.
  SpiClient client(inner_, server_->endpoint());
  resilience::Deadline spent =
      resilience::Deadline::after(std::chrono::milliseconds(-5));
  resilience::DeadlineScope scope(spent);
  Stopwatch stopwatch;
  auto outcome = client.call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kDeadlineExceeded);
  EXPECT_LT(stopwatch.elapsed_ms(), 50.0);
}

// --- retry ------------------------------------------------------------------

TEST_F(ResilienceE2eTest, RefusedConnectsAreRetriedToSuccess) {
  FaultPlan plan;
  plan.refuse_connects = 2;
  auto client = faulty_client(plan, retrying_options(4));
  auto outcome = client->call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "x");
  EXPECT_EQ(client->stats().retries, 2u);
}

TEST_F(ResilienceE2eTest, NonIdempotentOperationIsNeverRetriedAfterWrite) {
  FaultPlan plan;
  plan.sever_after_bytes = 100;  // request bytes were written, then cut
  auto client = faulty_client(plan, retrying_options(4));
  auto outcome = client->call("CountService", "Mutate", {});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kConnectionClosed);
  EXPECT_EQ(client->stats().retries, 0u)
      << "a severed non-idempotent call may have executed; replay forbidden";
  EXPECT_EQ(mutate_runs_.load(), 0);
  expect_server_still_healthy();
}

TEST_F(ResilienceE2eTest, SameSeverIsRetriedWhenIdempotent) {
  // Contrast case: identical fault, idempotent operation -> retries run
  // (every attempt severs, so the call still fails, but the gate opened).
  FaultPlan plan;
  plan.sever_after_bytes = 100;
  auto client = faulty_client(plan, retrying_options(3));
  auto outcome = client->call("EchoService", "Echo", {{"data", Value("x")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(client->stats().retries, 2u);
}

// --- partial-batch re-pack --------------------------------------------------

TEST_F(ResilienceE2eTest, OnlyFailedSubCallsAreReplayed) {
  auto client = faulty_client(FaultPlan{}, retrying_options(3));
  std::vector<ServiceCall> calls = {
      make_call("CountService", "Ok", {}),
      make_call("CountService", "Flaky", {}),
      make_call("CountService", "Ok", {}),
  };
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok()) << outcome.error().to_string();
  }
  EXPECT_EQ(outcomes[1].value().as_string(), "recovered");
  // Server-side proof: the healthy siblings ran exactly once; only the
  // failed sub-call travelled in the replay message.
  EXPECT_EQ(ok_runs_.load(), 2);
  EXPECT_EQ(flaky_runs_.load(), 2);
  EXPECT_EQ(client->stats().partial_repacks, 1u);
  EXPECT_EQ(client->stats().retries, 1u);
}

TEST_F(ResilienceE2eTest, SingleCallBatchRepackDegenerate) {
  auto client = faulty_client(FaultPlan{}, retrying_options(3));
  std::vector<ServiceCall> calls = {make_call("CountService", "Flaky", {})};
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error().to_string();
  EXPECT_EQ(flaky_runs_.load(), 2);
  EXPECT_EQ(client->stats().partial_repacks, 1u);
}

TEST_F(ResilienceE2eTest, TraditionalSingleCallIsAlsoReplayed) {
  auto client = faulty_client(FaultPlan{}, retrying_options(3));
  auto outcome = client->call("CountService", "Flaky", {});
  ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  EXPECT_EQ(outcome.value().as_string(), "recovered");
  EXPECT_EQ(flaky_runs_.load(), 2);
}

TEST_F(ResilienceE2eTest, TerminalFaultsAreNotReplayed) {
  auto client = faulty_client(FaultPlan{}, retrying_options(3));
  std::vector<ServiceCall> calls = {
      make_call("CountService", "Ok", {}),
      make_call("NoSuchService", "Nope", {}),  // NotFound: a real answer
  };
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(client->stats().partial_repacks, 0u);
  EXPECT_EQ(ok_runs_.load(), 1);
}

// --- circuit breaker --------------------------------------------------------

TEST_F(ResilienceE2eTest, BreakerOpensFailsFastAndRecovers) {
  ManualClock breaker_clock;
  resilience::CircuitBreakerOptions breaker_options;
  breaker_options.window_size = 4;
  breaker_options.min_samples = 2;
  breaker_options.failure_ratio = 0.5;
  breaker_options.open_cooldown = std::chrono::milliseconds(100);
  resilience::CircuitBreakerSet breakers(breaker_options, breaker_clock);

  FaultPlan plan;
  plan.refuse_connects = 2;
  ClientOptions options;
  options.breakers = &breakers;
  auto client = faulty_client(plan, options);

  for (int i = 0; i < 2; ++i) {
    auto outcome = client->call("EchoService", "Echo", {{"data", Value("x")}});
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code(), ErrorCode::kConnectionFailed);
  }
  ASSERT_EQ(breakers.for_endpoint(server_->endpoint()).state(),
            resilience::BreakerState::kOpen);

  // Open: fail fast, no connect, well under a millisecond.
  Stopwatch stopwatch;
  auto rejected = client->call("EchoService", "Echo", {{"data", Value("x")}});
  double fast_fail_ms = stopwatch.elapsed_ms();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kUnavailable);
  EXPECT_LT(fast_fail_ms, 1.0) << "open breaker must answer in <1ms";
  EXPECT_EQ(client->stats().breaker_fast_fails, 1u);

  // Cooldown elapses; the half-open probe hits a now-healthy transport
  // (both refusals are spent) and closes the breaker.
  breaker_clock.advance(std::chrono::milliseconds(150));
  auto probe = client->call("EchoService", "Echo", {{"data", Value("y")}});
  ASSERT_TRUE(probe.ok()) << probe.error().to_string();
  EXPECT_EQ(breakers.for_endpoint(server_->endpoint()).state(),
            resilience::BreakerState::kClosed);
  auto after = client->call("EchoService", "Echo", {{"data", Value("z")}});
  EXPECT_TRUE(after.ok());
}

// --- seeded chaos (the CI matrix entry point) -------------------------------

struct ChaosConfig {
  std::string kind = "sever";
  std::uint64_t seed = 42;
  double rate = 0.05;
};

ChaosConfig chaos_config_from_env() {
  ChaosConfig config;
  if (const char* kind = std::getenv("SPI_CHAOS_FAULT")) config.kind = kind;
  if (const char* seed = std::getenv("SPI_CHAOS_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  return config;
}

TEST_F(ResilienceE2eTest, SeededChaosMatrixKeepsGoodputWithRetries) {
  ChaosConfig config = chaos_config_from_env();
  FaultPlan plan;
  plan.seed = config.seed;
  if (config.kind == "drop") {
    plan.refuse_rate = config.rate;
  } else if (config.kind == "corrupt") {
    plan.corrupt_rate = config.rate;
  } else {
    plan.sever_rate = config.rate;
  }

  ClientOptions options = retrying_options(4);
  options.retry.budget = 50.0;
  auto client = faulty_client(plan, options);

  constexpr size_t kMessages = 200;
  constexpr size_t kCallsPerMessage = 5;
  size_t ok = 0;
  for (size_t i = 0; i < kMessages; ++i) {
    auto calls = bench::make_echo_calls(kCallsPerMessage, 64, i);
    auto outcomes = client->call_packed(calls);
    for (const auto& outcome : outcomes) {
      if (outcome.ok()) ++ok;
    }
  }
  const size_t total = kMessages * kCallsPerMessage;
  double success = static_cast<double>(ok) / static_cast<double>(total);
  auto stats = faulty_->fault_stats();
  RecordProperty("chaos_kind", config.kind);
  RecordProperty("chaos_success_permille",
                 static_cast<int>(success * 1000.0));
  RecordProperty("chaos_injected",
                 static_cast<int>(stats.refusals + stats.severs +
                                  stats.corruptions));
  // The run must actually exercise the fault it claims to.
  EXPECT_GE(stats.refusals + stats.severs + stats.corruptions, 1u);
  if (config.kind == "corrupt") {
    // Corruption is not retryable (a flipped payload byte can even echo
    // back "successfully"); the bar is surviving it, not goodput.
    EXPECT_GE(success, 0.90);
  } else {
    EXPECT_GE(success, 0.99);
  }
  expect_server_still_healthy();
}

TEST_F(ResilienceE2eTest, OnePercentSeverMeetsTheGoodputBar) {
  // Acceptance bar from the chaos study: >= 99.9% packed sub-call success
  // at a 1% connection-sever rate with retries + budget enabled.
  FaultPlan plan;
  plan.sever_rate = 0.01;
  plan.seed = 42;
  ClientOptions options = retrying_options(4);
  options.retry.budget = 50.0;
  auto client = faulty_client(plan, options);

  constexpr size_t kMessages = 200;
  constexpr size_t kCallsPerMessage = 5;
  size_t ok = 0;
  for (size_t i = 0; i < kMessages; ++i) {
    auto calls = bench::make_echo_calls(kCallsPerMessage, 64, 1000 + i);
    auto outcomes = client->call_packed(calls);
    for (const auto& outcome : outcomes) {
      if (outcome.ok()) ++ok;
    }
  }
  double success = static_cast<double>(ok) /
                   static_cast<double>(kMessages * kCallsPerMessage);
  EXPECT_GE(success, 0.999) << "ok=" << ok;
  expect_server_still_healthy();
}

}  // namespace
}  // namespace spi::core
