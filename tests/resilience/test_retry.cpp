// Retry policy unit tests: fault classification, fault_cause recovery
// from SOAP fault messages, the token-bucket budget, deterministic
// seeded backoff, and the should_retry gates (idempotency, attempt cap,
// budget exhaustion).
#include <gtest/gtest.h>

#include <chrono>

#include "resilience/retry.hpp"

namespace spi::resilience {
namespace {

using std::chrono::milliseconds;

Error fault(std::string_view faultstring) {
  // soap::Fault::to_error shape: "faultcode: faultstring (detail)".
  std::string message = "SOAP-ENV:Server: ";
  message += faultstring;
  message += " (handler detail)";
  return Error(ErrorCode::kFault, message);
}

TEST(Classify, ConnectRefusedIsRetryableBeforeWrite) {
  EXPECT_EQ(classify(Error(ErrorCode::kConnectionFailed, "refused")),
            FaultClass::kRetryableBeforeWrite);
}

TEST(Classify, SeverAndTimeoutNeedIdempotency) {
  EXPECT_EQ(classify(Error(ErrorCode::kConnectionClosed, "sever")),
            FaultClass::kRetryableIfIdempotent);
  EXPECT_EQ(classify(Error(ErrorCode::kTimeout, "receive timed out")),
            FaultClass::kRetryableIfIdempotent);
}

TEST(Classify, NotExecutedFaultsAreAlwaysRetryable) {
  EXPECT_EQ(classify(fault("DeadlineExceeded")),
            FaultClass::kRetryableNotExecuted);
  EXPECT_EQ(classify(fault("CapacityExceeded")),
            FaultClass::kRetryableNotExecuted);
  EXPECT_EQ(classify(fault("Shutdown")), FaultClass::kRetryableNotExecuted);
}

TEST(Classify, RealAnswersAndLocalStopsAreTerminal) {
  // An application fault is an answer, not an outage.
  EXPECT_EQ(classify(fault("NotFound")), FaultClass::kTerminal);
  EXPECT_EQ(classify(fault("Internal")), FaultClass::kTerminal);
  // Local deadline spent: piling on would make the overload worse.
  EXPECT_EQ(classify(Error(ErrorCode::kDeadlineExceeded, "budget spent")),
            FaultClass::kTerminal);
  // Breaker open: the fail-fast answer must stay fast.
  EXPECT_EQ(classify(Error(ErrorCode::kUnavailable, "circuit open")),
            FaultClass::kTerminal);
  EXPECT_EQ(classify(Error(ErrorCode::kInvalidArgument, "bad xml")),
            FaultClass::kTerminal);
}

TEST(FaultCause, RecoversServerCodeFromFaultMessage) {
  EXPECT_EQ(fault_cause(fault("DeadlineExceeded")),
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(fault_cause(fault("CapacityExceeded")),
            ErrorCode::kCapacityExceeded);
  EXPECT_EQ(fault_cause(fault("Shutdown")), ErrorCode::kShutdown);
  EXPECT_EQ(fault_cause(fault("NotFound")), ErrorCode::kNotFound);
}

TEST(FaultCause, PassesNonFaultsThroughAndDefaultsUnknown) {
  EXPECT_EQ(fault_cause(Error(ErrorCode::kTimeout, "t")), ErrorCode::kTimeout);
  EXPECT_EQ(fault_cause(Error(ErrorCode::kFault, "weird free-form text")),
            ErrorCode::kFault);
}

TEST(RetryBudget, SpendsWholeTokensAndEarnsBackFractions) {
  RetryBudget budget(2.0, 0.5);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend()) << "bucket empty";
  budget.on_call();  // +0.5 -> still below one whole token
  EXPECT_FALSE(budget.try_spend());
  budget.on_call();  // +0.5 -> exactly 1.0
  EXPECT_TRUE(budget.try_spend());
  EXPECT_DOUBLE_EQ(budget.level(), 0.0);
}

TEST(RetryBudget, DepositsCapAtCapacity) {
  RetryBudget budget(1.0, 0.7);
  for (int i = 0; i < 100; ++i) budget.on_call();
  EXPECT_DOUBLE_EQ(budget.level(), 1.0);
}

TEST(RetryBudget, NonPositiveCapacityMeansUnlimited) {
  RetryBudget budget(0.0, 0.1);
  EXPECT_TRUE(budget.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.try_spend());
}

TEST(RetryPolicy, DisabledAtOneAttempt) {
  RetryPolicy policy(RetryOptions{});
  EXPECT_FALSE(policy.enabled());
  EXPECT_FALSE(policy.should_retry(
      Error(ErrorCode::kConnectionFailed, "refused"), 1, true));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff = milliseconds(2);
  options.max_backoff = milliseconds(10);
  options.multiplier = 2.0;
  options.jitter = 0.0;  // exact schedule
  RetryPolicy policy(options);
  EXPECT_EQ(policy.backoff(1), milliseconds(2));
  EXPECT_EQ(policy.backoff(2), milliseconds(4));
  EXPECT_EQ(policy.backoff(3), milliseconds(8));
  EXPECT_EQ(policy.backoff(4), milliseconds(10)) << "capped";
  EXPECT_EQ(policy.backoff(9), milliseconds(10));
}

TEST(RetryPolicy, JitterIsBoundedAndSeedDeterministic) {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = milliseconds(10);
  options.jitter = 0.2;
  options.seed = 42;
  RetryPolicy a(options);
  RetryPolicy b(options);
  for (int k = 1; k <= 16; ++k) {
    Duration pause = a.backoff(k);
    EXPECT_EQ(pause, b.backoff(k)) << "same seed, same schedule (k=" << k
                                   << ")";
    Duration base = std::min(
        options.max_backoff,
        Duration(options.initial_backoff.count() << std::min(k - 1, 20)));
    EXPECT_GE(pause, Duration(static_cast<Duration::rep>(
                         static_cast<double>(base.count()) * 0.8)));
    EXPECT_LE(pause, Duration(static_cast<Duration::rep>(
                         static_cast<double>(base.count()) * 1.2)));
  }
}

TEST(RetryPolicy, GatesOnIdempotencyForPostWriteFailures) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  Error sever(ErrorCode::kConnectionClosed, "sever mid-response");
  EXPECT_FALSE(policy.should_retry(sever, 1, /*idempotent=*/false))
      << "the call may have executed; never replay a non-idempotent op";
  EXPECT_TRUE(policy.should_retry(sever, 1, /*idempotent=*/true));
  // Not-executed server faults are retryable even for non-idempotent ops.
  Error shed = fault("DeadlineExceeded");
  (void)shed;
  EXPECT_TRUE(policy.should_retry(fault("CapacityExceeded"), 1,
                                  /*idempotent=*/false));
}

TEST(RetryPolicy, NamedOverloadConsultsThePredicate) {
  RetryOptions options;
  options.max_attempts = 3;
  options.idempotent = [](std::string_view service,
                          std::string_view operation) {
    return service == "Echo" && operation == "Echo";
  };
  RetryPolicy policy(options);
  Error sever(ErrorCode::kConnectionClosed, "sever");
  EXPECT_TRUE(policy.should_retry(sever, 1, "Echo", "Echo"));
  EXPECT_FALSE(policy.should_retry(sever, 1, "Airline", "Reserve"));
}

TEST(RetryPolicy, NullPredicateAssumesNonIdempotent) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  EXPECT_FALSE(policy.should_retry(Error(ErrorCode::kTimeout, "t"), 1,
                                   "Echo", "Echo"));
}

TEST(RetryPolicy, StopsAtMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  Error refused(ErrorCode::kConnectionFailed, "refused");
  EXPECT_TRUE(policy.should_retry(refused, 1, false));
  EXPECT_TRUE(policy.should_retry(refused, 2, false));
  EXPECT_FALSE(policy.should_retry(refused, 3, false));
}

TEST(RetryPolicy, BudgetExhaustionStopsRetriesAcrossCalls) {
  RetryOptions options;
  options.max_attempts = 2;
  options.budget = 2.0;
  options.deposit_per_call = 0.0;  // no earn-back: the bucket only drains
  RetryPolicy policy(options);
  Error refused(ErrorCode::kConnectionFailed, "refused");
  EXPECT_TRUE(policy.should_retry(refused, 1, false));
  EXPECT_TRUE(policy.should_retry(refused, 1, false));
  EXPECT_FALSE(policy.should_retry(refused, 1, false))
      << "third retry must be denied: budget spent";
  EXPECT_EQ(policy.retries_granted(), 2u);
}

TEST(RetryPolicy, RetryAfterFloorOverridesSmallerBackoff) {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = milliseconds(2);
  options.max_backoff = milliseconds(10);
  options.multiplier = 2.0;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  // Below the floor: the server's hint wins.
  EXPECT_EQ(policy.backoff(1, milliseconds(50)), milliseconds(50));
  // Above the floor: the policy's own (capped) schedule wins.
  EXPECT_EQ(policy.backoff(4, milliseconds(3)), milliseconds(10));
  // Zero floor (no hint) leaves the schedule untouched.
  EXPECT_EQ(policy.backoff(2, Duration::zero()), milliseconds(4));
}

TEST(ParseRetryAfter, AcceptsDecimalSeconds) {
  EXPECT_EQ(parse_retry_after("0.050"), milliseconds(50));
  EXPECT_EQ(parse_retry_after("2"), std::chrono::seconds(2));
  EXPECT_EQ(parse_retry_after(" 1.5 "), milliseconds(1500));
}

TEST(ParseRetryAfter, CapsHostileHints) {
  EXPECT_EQ(parse_retry_after("999999999"), std::chrono::hours(1));
}

TEST(ParseRetryAfter, ZeroAndNegativeClampToZero) {
  EXPECT_EQ(parse_retry_after("0"), Duration::zero());
  EXPECT_EQ(parse_retry_after("0.0"), Duration::zero());
}

TEST(ParseRetryAfter, RejectsDatesAndJunk) {
  EXPECT_EQ(parse_retry_after(""), std::nullopt);
  EXPECT_EQ(parse_retry_after("."), std::nullopt);
  EXPECT_EQ(parse_retry_after("1.2.3"), std::nullopt);
  EXPECT_EQ(parse_retry_after("-1"), std::nullopt);
  EXPECT_EQ(parse_retry_after("soon"), std::nullopt);
  EXPECT_EQ(parse_retry_after("Fri, 31 Dec 1999 23:59:59 GMT"),
            std::nullopt);
}

}  // namespace
}  // namespace spi::resilience
