// Circuit breaker unit tests against a ManualClock: min_samples guard,
// ratio-triggered open, fast-fail while open, cooldown -> half-open probe
// flow (success closes, failure re-opens), and per-endpoint isolation in
// CircuitBreakerSet.
#include <gtest/gtest.h>

#include <chrono>

#include "resilience/circuit_breaker.hpp"

namespace spi::resilience {
namespace {

using std::chrono::milliseconds;

CircuitBreakerOptions small_options() {
  CircuitBreakerOptions options;
  options.window_size = 8;
  options.min_samples = 4;
  options.failure_ratio = 0.5;
  options.open_cooldown = milliseconds(100);
  options.half_open_probes = 1;
  options.required_successes = 1;
  return options;
}

void fail_n(CircuitBreaker& breaker, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(breaker.allow().ok());
    breaker.on_failure();
  }
}

TEST(CircuitBreaker, StaysClosedBelowMinSamples) {
  ManualClock clock;
  CircuitBreaker breaker(small_options(), clock);
  // 3 consecutive failures on a cold endpoint: 100% ratio but below
  // min_samples, so a flaky first impression cannot open the breaker.
  fail_n(breaker, 3);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow().ok());
  breaker.on_success();
}

TEST(CircuitBreaker, OpensAtFailureRatio) {
  ManualClock clock;
  CircuitBreaker breaker(small_options(), clock);
  fail_n(breaker, 4);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreaker, MixedWindowRespectsRatio) {
  ManualClock clock;
  CircuitBreaker breaker(small_options(), clock);
  // 3 failures / 5 successes in an 8-wide window = 0.375 < 0.5: closed.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(breaker.allow().ok());
    breaker.on_success();
  }
  fail_n(breaker, 3);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // One more failure: 4/8 = 0.5 -> open.
  fail_n(breaker, 1);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, FailsFastWhileOpenAndCountsRejections) {
  ManualClock clock;
  CircuitBreaker breaker(small_options(), clock);
  fail_n(breaker, 4);
  for (int i = 0; i < 10; ++i) {
    Status admitted = breaker.allow();
    ASSERT_FALSE(admitted.ok());
    EXPECT_EQ(admitted.error().code(), ErrorCode::kUnavailable);
  }
  EXPECT_EQ(breaker.rejections(), 10u);
}

TEST(CircuitBreaker, CooldownAdmitsOneProbeThatCloses) {
  ManualClock clock;
  CircuitBreaker breaker(small_options(), clock);
  fail_n(breaker, 4);
  clock.advance(milliseconds(99));
  EXPECT_FALSE(breaker.allow().ok()) << "cooldown not elapsed yet";
  clock.advance(milliseconds(2));

  // Half-open: exactly one probe slot.
  ASSERT_TRUE(breaker.allow().ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.allow().ok()) << "second concurrent probe refused";

  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // Fresh window after recovery: old failures are forgotten.
  ASSERT_TRUE(breaker.allow().ok());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsCooldown) {
  ManualClock clock;
  CircuitBreaker breaker(small_options(), clock);
  fail_n(breaker, 4);
  clock.advance(milliseconds(150));
  ASSERT_TRUE(breaker.allow().ok());
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow().ok());
  clock.advance(milliseconds(99));
  EXPECT_FALSE(breaker.allow().ok()) << "cooldown restarted by failed probe";
  clock.advance(milliseconds(2));
  ASSERT_TRUE(breaker.allow().ok());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, RequiredSuccessesDemandsConsecutiveWins) {
  ManualClock clock;
  CircuitBreakerOptions options = small_options();
  options.half_open_probes = 2;
  options.required_successes = 2;
  CircuitBreaker breaker(options, clock);
  fail_n(breaker, 4);
  clock.advance(milliseconds(150));
  ASSERT_TRUE(breaker.allow().ok());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen)
      << "one success of two required";
  ASSERT_TRUE(breaker.allow().ok());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerSet, EndpointsAreIsolated) {
  ManualClock clock;
  CircuitBreakerSet set(small_options(), clock);
  net::Endpoint alpha{"alpha", 80};
  net::Endpoint beta{"beta", 80};
  fail_n(set.for_endpoint(alpha), 4);
  EXPECT_EQ(set.for_endpoint(alpha).state(), BreakerState::kOpen);
  EXPECT_EQ(set.for_endpoint(beta).state(), BreakerState::kClosed);
  EXPECT_TRUE(set.for_endpoint(beta).allow().ok());
  set.for_endpoint(beta).on_success();
  // Same endpoint -> same breaker instance.
  EXPECT_EQ(&set.for_endpoint(alpha), &set.for_endpoint(alpha));
}

TEST(CircuitBreakerSet, BindMetricsExportsStateAndCounters) {
  ManualClock clock;
  CircuitBreakerSet set(small_options(), clock);
  net::Endpoint endpoint{"server", 80};
  fail_n(set.for_endpoint(endpoint), 4);
  (void)set.for_endpoint(endpoint).allow();  // one rejection

  telemetry::MetricsRegistry registry;
  set.bind_metrics(registry);
  std::string scrape = registry.expose();
  EXPECT_NE(scrape.find("spi_breaker_state"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("spi_breaker_opens_total"), std::string::npos);
  EXPECT_NE(scrape.find("spi_breaker_rejections_total"), std::string::npos);
  EXPECT_NE(scrape.find("server:80"), std::string::npos)
      << "endpoint label present:\n" << scrape;
}

TEST(CircuitBreakerSet, BackendsAddedAfterBindMetricsAreExported) {
  // The proxy binds metrics at construction and grows the fleet at
  // runtime (add_backend): breakers minted AFTER bind_metrics must join
  // the scrape, not vanish from observability.
  ManualClock clock;
  CircuitBreakerSet set(small_options(), clock);
  telemetry::MetricsRegistry registry;
  set.bind_metrics(registry);

  net::Endpoint late{"late-backend", 8080};
  fail_n(set.for_endpoint(late), 4);
  EXPECT_EQ(set.for_endpoint(late).state(), BreakerState::kOpen);

  std::string scrape = registry.expose();
  EXPECT_NE(scrape.find("spi_breaker_state"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("late-backend:8080"), std::string::npos)
      << "runtime-added endpoint missing from scrape:\n" << scrape;
}

TEST(BreakerStateName, NamesAllStates) {
  EXPECT_EQ(breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_EQ(breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_EQ(breaker_state_name(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace spi::resilience
