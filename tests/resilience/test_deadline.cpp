// Deadline propagation unit tests: arithmetic against an injected clock,
// the <spi:Deadline> wire round-trip (relative remaining-budget,
// re-anchored by the receiver), the pre-parse scan, and the thread-local
// DeadlineScope the Assembler reads.
#include <gtest/gtest.h>

#include <chrono>

#include "common/timeout.hpp"
#include "resilience/deadline.hpp"
#include "soap/envelope.hpp"

namespace spi::resilience {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

TEST(Deadline, DefaultIsNeverAndUnbounded) {
  Deadline deadline;
  EXPECT_FALSE(deadline.valid());
  ManualClock clock;
  EXPECT_FALSE(deadline.expired(clock.now()));
  EXPECT_EQ(deadline.remaining_or_unbounded(clock.now()), kNoTimeout);
  EXPECT_TRUE(deadline.to_header_block(clock.now()).empty());
}

TEST(Deadline, RemainingAndExpiryTrackTheClock) {
  ManualClock clock;
  Deadline deadline = Deadline::after(milliseconds(100), clock);
  EXPECT_TRUE(deadline.valid());
  EXPECT_FALSE(deadline.expired(clock.now()));
  EXPECT_EQ(deadline.remaining(clock.now()), milliseconds(100));

  clock.advance(milliseconds(60));
  EXPECT_EQ(deadline.remaining(clock.now()), milliseconds(40));
  EXPECT_FALSE(deadline.expired(clock.now()));

  clock.advance(milliseconds(40));
  EXPECT_TRUE(deadline.expired(clock.now()));
  EXPECT_EQ(deadline.remaining(clock.now()), Duration::zero());
}

TEST(Deadline, ExpiredRemainingOrUnboundedFailsFastNotForever) {
  // The 0-means-infinite convention must not turn "expired" into "wait
  // forever": an expired deadline yields the smallest positive bound.
  ManualClock clock;
  Deadline deadline = Deadline::after(milliseconds(1), clock);
  clock.advance(milliseconds(5));
  Duration bound = deadline.remaining_or_unbounded(clock.now());
  EXPECT_FALSE(is_unbounded(bound));
  EXPECT_EQ(bound, Duration(1));
}

TEST(Deadline, HeaderBlockCarriesRemainingMicroseconds) {
  ManualClock clock;
  Deadline deadline = Deadline::after(microseconds(250'000), clock);
  EXPECT_EQ(deadline.to_header_block(clock.now()),
            "<spi:Deadline><spi:RemainingUs>250000</spi:RemainingUs>"
            "</spi:Deadline>");
}

TEST(Deadline, WireRoundTripReAnchorsOnTheReceiversClock) {
  // Sender and receiver clocks are NOT comparable; what travels is the
  // remaining budget, re-anchored at parse time.
  ManualClock sender;
  sender.advance(std::chrono::hours(1000));  // wildly different epoch
  Deadline outbound = Deadline::after(milliseconds(80), sender);
  std::string envelope = soap::build_envelope(
      "<spi:Echo/>", {outbound.to_header_block(sender.now())});

  ManualClock receiver;
  auto parsed = soap::Envelope::parse(envelope);
  ASSERT_TRUE(parsed.ok());
  auto inbound =
      Deadline::from_header_blocks(parsed.value().header_blocks,
                                   receiver.now());
  ASSERT_TRUE(inbound.has_value());
  EXPECT_EQ(inbound->remaining(receiver.now()), milliseconds(80));

  receiver.advance(milliseconds(81));
  EXPECT_TRUE(inbound->expired(receiver.now()));
}

TEST(Deadline, NegativeRemainingTravelsAndArrivesExpired) {
  // A message that spent its budget queueing ships a negative remaining —
  // the receiver must see it as already expired, not reject the header.
  ManualClock sender;
  sender.advance(std::chrono::seconds(10));
  Deadline outbound = Deadline::after(milliseconds(-5), sender);
  std::string block = outbound.to_header_block(sender.now());
  ASSERT_NE(block.find("-5000"), std::string::npos) << block;

  ManualClock receiver;
  receiver.advance(std::chrono::seconds(99));
  auto inbound = Deadline::scan(block, receiver.now());
  ASSERT_TRUE(inbound.has_value());
  EXPECT_TRUE(inbound->expired(receiver.now()));
}

TEST(Deadline, LongDeadHeaderIsSuppressed) {
  // >1s past-expired: nothing useful to ship; serializes to nothing.
  ManualClock clock;
  clock.advance(std::chrono::seconds(10));
  Deadline deadline = Deadline::after(std::chrono::seconds(-2), clock);
  EXPECT_TRUE(deadline.to_header_block(clock.now()).empty());
}

TEST(Deadline, ScanFindsTheFragmentWithoutADom) {
  ManualClock clock;
  Deadline outbound = Deadline::after(milliseconds(30), clock);
  std::string envelope = soap::build_envelope(
      "<spi:Parallel_Method/>", {outbound.to_header_block(clock.now())});
  auto scanned = Deadline::scan(envelope, clock.now());
  ASSERT_TRUE(scanned.has_value());
  EXPECT_EQ(scanned->remaining(clock.now()), milliseconds(30));
}

TEST(Deadline, ScanIgnoresEnvelopesWithoutADeadline) {
  ManualClock clock;
  EXPECT_FALSE(
      Deadline::scan(soap::build_envelope("<spi:Echo/>"), clock.now())
          .has_value());
  EXPECT_FALSE(Deadline::scan("", clock.now()).has_value());
  EXPECT_FALSE(
      Deadline::scan("<spi:Deadline><spi:RemainingUs>not-a-number"
                     "</spi:RemainingUs></spi:Deadline>",
                     clock.now())
          .has_value());
}

TEST(Deadline, ScanWindowIsBounded) {
  // A fragment pushed past the 4 KB scan window is not found — the shed
  // check stays O(1) in message size. (Real envelopes put headers first.)
  ManualClock clock;
  std::string padding(8192, 'x');
  std::string document =
      padding + "<spi:Deadline><spi:RemainingUs>1000"
                "</spi:RemainingUs></spi:Deadline>";
  EXPECT_FALSE(Deadline::scan(document, clock.now()).has_value());
}

TEST(Deadline, AbsurdWireBudgetIsRejected) {
  ManualClock clock;
  EXPECT_FALSE(
      Deadline::scan("<spi:Deadline><spi:RemainingUs>99999999999999999999"
                     "</spi:RemainingUs></spi:Deadline>",
                     clock.now())
          .has_value());
}

TEST(DeadlineScope, InstallsAndRestoresThreadLocally) {
  EXPECT_EQ(current_deadline(), nullptr);
  ManualClock clock;
  Deadline outer = Deadline::after(milliseconds(100), clock);
  {
    DeadlineScope outer_scope(outer);
    ASSERT_NE(current_deadline(), nullptr);
    EXPECT_EQ(current_deadline(), &outer);
    Deadline inner = Deadline::after(milliseconds(10), clock);
    {
      DeadlineScope inner_scope(inner);
      EXPECT_EQ(current_deadline(), &inner);
    }
    EXPECT_EQ(current_deadline(), &outer);
  }
  EXPECT_EQ(current_deadline(), nullptr);
}

TEST(MinTimeout, ComposesConfiguredTimeoutWithDeadlineBudget) {
  EXPECT_EQ(min_timeout(kNoTimeout, kNoTimeout), kNoTimeout);
  EXPECT_EQ(min_timeout(kNoTimeout, milliseconds(5)), milliseconds(5));
  EXPECT_EQ(min_timeout(milliseconds(5), kNoTimeout), milliseconds(5));
  EXPECT_EQ(min_timeout(milliseconds(5), milliseconds(3)), milliseconds(3));
  EXPECT_EQ(min_timeout(milliseconds(2), milliseconds(3)), milliseconds(2));
}

}  // namespace
}  // namespace spi::resilience
