// CodecRegistry negotiation matrix: the Accept-Encoding advertisement to
// chosen-codec mapping, including every fallback edge the server relies on
// for foreign-client interop.
#include <gtest/gtest.h>

#include "codec/registry.hpp"
#include "http/parser.hpp"

namespace spi::codec {
namespace {

std::vector<CodecPreference> prefs(
    std::initializer_list<CodecPreference> list) {
  return list;
}

/// The server-side conversion: header text through http's qvalue parser
/// into registry preferences.
std::vector<CodecPreference> from_header(std::string_view value) {
  std::vector<CodecPreference> out;
  for (http::AcceptEncodingEntry& entry :
       http::parse_accept_encoding(value)) {
    out.push_back({std::move(entry.name), entry.q});
  }
  return out;
}

TEST(CodecRegistryTest, BuiltinKnowsAllThreeCodecs) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  EXPECT_NE(registry.find("identity"), nullptr);
  EXPECT_NE(registry.find("deflate"), nullptr);
  EXPECT_NE(registry.find("bxml"), nullptr);
  EXPECT_EQ(registry.find("gzip"), nullptr);
  auto names = registry.names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "identity");
}

TEST(CodecRegistryTest, FindIsCaseInsensitive) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  ASSERT_NE(registry.find("DEFLATE"), nullptr);
  EXPECT_EQ(registry.find("DEFLATE")->name(), "deflate");
}

TEST(CodecRegistryTest, FirstKnownPreferenceWins) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  const WireCodec& chosen =
      registry.negotiate(prefs({{"bxml", 1.0}, {"deflate", 0.5}}));
  EXPECT_EQ(chosen.name(), "bxml");
}

TEST(CodecRegistryTest, UnknownEntriesAreSkipped) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  bool fell_back = true;
  const WireCodec& chosen = registry.negotiate(
      prefs({{"gzip", 1.0}, {"br", 0.9}, {"deflate", 0.8}}), &fell_back);
  EXPECT_EQ(chosen.name(), "deflate");
  EXPECT_FALSE(fell_back);
}

TEST(CodecRegistryTest, AllUnknownFallsBackToIdentity) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  bool fell_back = false;
  const WireCodec& chosen =
      registry.negotiate(prefs({{"gzip", 1.0}, {"br", 0.9}}), &fell_back);
  EXPECT_EQ(chosen.name(), "identity");
  EXPECT_TRUE(fell_back) << "a non-empty advertisement that matched "
                            "nothing is a fallback worth counting";
}

TEST(CodecRegistryTest, EmptyAdvertisementIsIdentityNotFallback) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  bool fell_back = true;
  const WireCodec& chosen = registry.negotiate({}, &fell_back);
  EXPECT_EQ(chosen.name(), "identity");
  EXPECT_FALSE(fell_back);
}

TEST(CodecRegistryTest, WildcardMatchesIdentity) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  const WireCodec& chosen = registry.negotiate(prefs({{"*", 1.0}}));
  EXPECT_EQ(chosen.name(), "identity");
}

TEST(CodecRegistryTest, ZeroQEntriesNeverMatch) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  bool fell_back = false;
  const WireCodec& chosen =
      registry.negotiate(prefs({{"deflate", 0.0}}), &fell_back);
  EXPECT_EQ(chosen.name(), "identity");
}

TEST(CodecRegistryTest, HeaderTextDrivesTheSameMatrix) {
  const CodecRegistry& registry = CodecRegistry::builtin();
  // The http parser sorts by q, so the registry's first-known rule sees
  // deflate before bxml here despite header order.
  const WireCodec& chosen =
      registry.negotiate(from_header("bxml;q=0.4, deflate;q=0.9"));
  EXPECT_EQ(chosen.name(), "deflate");
  // identity;q=0 is dropped by the parser; nothing else known -> identity
  // fallback (the RFC's "identity refused" has no better answer on a SOAP
  // endpoint that must respond).
  bool fell_back = false;
  (void)registry.negotiate(from_header("identity;q=0, gzip"), &fell_back);
  EXPECT_TRUE(fell_back);
}

TEST(CodecRegistryTest, CustomRegistryStartsWithIdentityOnly) {
  CodecRegistry registry;
  EXPECT_NE(registry.find("identity"), nullptr);
  EXPECT_EQ(registry.find("deflate"), nullptr);
  const WireCodec& chosen = registry.negotiate(prefs({{"deflate", 1.0}}));
  EXPECT_EQ(chosen.name(), "identity");
}

}  // namespace
}  // namespace spi::codec
