// EncodedResponseCache: exact-match semantics, per-codec keying, LRU
// eviction, and the oversized-entry guard.
#include <gtest/gtest.h>

#include "codec/response_cache.hpp"

namespace spi::codec {
namespace {

TEST(EncodedResponseCacheTest, MissThenHitReturnsExactBytes) {
  EncodedResponseCache cache;
  EXPECT_FALSE(cache.get("deflate", "plain-text").has_value());
  cache.put("deflate", "plain-text", "wire-bytes");
  auto hit = cache.get("deflate", "plain-text");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "wire-bytes");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(EncodedResponseCacheTest, KeyedPerCodec) {
  EncodedResponseCache cache;
  cache.put("deflate", "same-plain", "deflate-bytes");
  cache.put("bxml", "same-plain", "bxml-bytes");
  auto deflate_hit = cache.get("deflate", "same-plain");
  auto bxml_hit = cache.get("bxml", "same-plain");
  ASSERT_TRUE(deflate_hit.has_value());
  ASSERT_TRUE(bxml_hit.has_value());
  EXPECT_EQ(*deflate_hit, "deflate-bytes");
  EXPECT_EQ(*bxml_hit, "bxml-bytes");
}

TEST(EncodedResponseCacheTest, EvictsLeastRecentlyUsed) {
  EncodedResponseCache::Options options;
  options.capacity = 2;
  EncodedResponseCache cache(options);
  cache.put("deflate", "a", "ea");
  cache.put("deflate", "b", "eb");
  ASSERT_TRUE(cache.get("deflate", "a").has_value());  // refresh a
  cache.put("deflate", "c", "ec");                     // evicts b
  EXPECT_TRUE(cache.get("deflate", "a").has_value());
  EXPECT_FALSE(cache.get("deflate", "b").has_value());
  EXPECT_TRUE(cache.get("deflate", "c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(EncodedResponseCacheTest, OversizedEntriesAreNotCached) {
  EncodedResponseCache::Options options;
  options.max_entry_bytes = 16;
  EncodedResponseCache cache(options);
  cache.put("deflate", std::string(100, 'p'), "e");
  EXPECT_EQ(cache.size(), 0u);
  cache.put("deflate", "small", "e");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EncodedResponseCacheTest, ZeroCapacityDisables) {
  EncodedResponseCache::Options options;
  options.capacity = 0;
  EncodedResponseCache cache(options);
  cache.put("deflate", "a", "ea");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get("deflate", "a").has_value());
}

TEST(EncodedResponseCacheTest, DuplicatePutKeepsFirstEntry) {
  EncodedResponseCache cache;
  cache.put("deflate", "a", "first");
  cache.put("deflate", "a", "second");
  auto hit = cache.get("deflate", "a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "first");
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace spi::codec
