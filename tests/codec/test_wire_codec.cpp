// WireCodec unit coverage: identity/deflate/bxml round trips, corrupt-wire
// rejection (kCodecError), and the decoded-bytes budget (kCapacityExceeded
// in the "limit exceeded" shape the server counts).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "codec/bxml.hpp"
#include "codec/deflate.hpp"
#include "codec/wire_codec.hpp"
#include "common/random.hpp"
#include "soap/envelope.hpp"

namespace spi::codec {
namespace {

std::string sample_envelope(size_t repeats) {
  std::string body;
  for (size_t i = 0; i < repeats; ++i) {
    body += "<spi:Call id=\"" + std::to_string(i) +
            "\" service=\"EchoService\" operation=\"Echo\">"
            "<data xsi:type=\"xsd:string\">payload payload payload</data>"
            "</spi:Call>";
  }
  return soap::build_envelope("<spi:Parallel_Method>" + body +
                              "</spi:Parallel_Method>");
}

TEST(IdentityCodecTest, PassesBytesThrough) {
  const IdentityCodec& codec = identity_codec();
  EXPECT_EQ(codec.name(), "identity");
  auto encoded = codec.encode("hello");
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.value(), "hello");
  auto decoded = codec.decode(encoded.value(), 1024);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), "hello");
}

TEST(IdentityCodecTest, DecodeBudgetStillApplies) {
  auto decoded = identity_codec().decode(std::string(100, 'x'), 10);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_NE(decoded.error().message().find("limit exceeded: decoded-bytes"),
            std::string::npos);
}

TEST(DeflateCodecTest, RoundTripsAndCompressesEnvelopes) {
  DeflateCodec codec;
  EXPECT_EQ(codec.name(), "deflate");
  const std::string plain = sample_envelope(32);
  auto encoded = codec.encode(plain);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded.value().size(), plain.size() / 2)
      << "repetitive envelope text must compress well";
  auto decoded = codec.decode(encoded.value(), plain.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), plain);
}

TEST(DeflateCodecTest, RoundTripsIncompressibleData) {
  DeflateCodec codec;
  SplitMix64 rng(0xD3F1A7E);
  std::string plain;
  plain.reserve(50000);
  while (plain.size() < 50000) {
    std::uint64_t word = rng.next();
    plain.append(reinterpret_cast<const char*>(&word), sizeof(word));
  }
  auto encoded = codec.encode(plain);
  ASSERT_TRUE(encoded.ok());
  auto decoded = codec.decode(encoded.value(), plain.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), plain);
}

TEST(DeflateCodecTest, CorruptBodyIsCodecError) {
  DeflateCodec codec;
  auto encoded = codec.encode(sample_envelope(4));
  ASSERT_TRUE(encoded.ok());
  std::string corrupt = encoded.value();
  corrupt[corrupt.size() / 2] ^= 0x5A;
  corrupt[corrupt.size() / 2 + 1] ^= 0xA5;
  auto decoded = codec.decode(corrupt, 1u << 20);
  ASSERT_FALSE(decoded.ok());
  // A flipped bit mid-stream lands on kCodecError (invalid stream or
  // checksum mismatch) — never a crash, never silent data.
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCodecError);
}

TEST(DeflateCodecTest, TruncatedBodyIsCodecError) {
  DeflateCodec codec;
  auto encoded = codec.encode(sample_envelope(4));
  ASSERT_TRUE(encoded.ok());
  auto decoded = codec.decode(
      std::string_view(encoded.value()).substr(0, encoded.value().size() / 2),
      1u << 20);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCodecError);
}

TEST(DeflateCodecTest, DecompressionBombShedsAtBudget) {
  DeflateCodec codec;
  const std::string plain(4u << 20, 'a');  // 4 MB of one byte
  auto encoded = codec.encode(plain);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded.value().size(), 64u * 1024);
  auto decoded = codec.decode(encoded.value(), 64 * 1024);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_NE(decoded.error().message().find("limit exceeded: decoded-bytes"),
            std::string::npos);
}

TEST(BxmlCodecTest, DocumentMatchesTextParse) {
  BxmlCodec codec;
  EXPECT_EQ(codec.name(), "bxml");
  EXPECT_TRUE(codec.decodes_to_document());
  const std::string plain = sample_envelope(8);
  auto encoded = codec.encode(plain);
  ASSERT_TRUE(encoded.ok());
  EXPECT_LT(encoded.value().size(), plain.size())
      << "known-vocabulary envelopes must shrink";
  auto document = codec.decode_document(encoded.value(), 1u << 20, {});
  ASSERT_TRUE(document.ok()) << document.error().to_string();
  auto reference = xml::parse_document(plain);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(document.value().root == reference.value().root);
}

TEST(BxmlCodecTest, TextDecodeRoundTrips) {
  BxmlCodec codec;
  const std::string plain = sample_envelope(2);
  auto encoded = codec.encode(plain);
  ASSERT_TRUE(encoded.ok());
  auto decoded = codec.decode(encoded.value(), 1u << 20);
  ASSERT_TRUE(decoded.ok());
  auto reference = xml::parse_document(plain);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(decoded.value(), reference.value().to_string());
}

TEST(BxmlCodecTest, MalformedInputIsInvalidArgument) {
  BxmlCodec codec;
  auto encoded = codec.encode("<open>never closed");
  ASSERT_FALSE(encoded.ok());
  EXPECT_EQ(encoded.error().code(), ErrorCode::kInvalidArgument);
}

TEST(BxmlCodecTest, MissingMagicIsCodecError) {
  BxmlCodec codec;
  auto decoded = codec.decode_document("<not-bxml/>", 1024, {});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCodecError);
}

TEST(BxmlCodecTest, TruncatedStreamIsCodecError) {
  BxmlCodec codec;
  auto encoded = codec.encode(sample_envelope(2));
  ASSERT_TRUE(encoded.ok());
  auto decoded = codec.decode_document(
      std::string_view(encoded.value()).substr(0, encoded.value().size() / 2),
      1u << 20, {});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCodecError);
}

TEST(BxmlCodecTest, DecodedBudgetSheds) {
  BxmlCodec codec;
  auto encoded = codec.encode(sample_envelope(64));
  ASSERT_TRUE(encoded.ok());
  auto decoded = codec.decode_document(encoded.value(), 256, {});
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_NE(decoded.error().message().find("limit exceeded: decoded-bytes"),
            std::string::npos);
}

TEST(BxmlCodecTest, ParseLimitsStillGovernTheBinaryPath) {
  BxmlCodec codec;
  std::string deep = "<SOAP-ENV:Envelope><SOAP-ENV:Body>";
  for (int i = 0; i < 20; ++i) deep += "<nest>";
  for (int i = 0; i < 20; ++i) deep += "</nest>";
  deep += "</SOAP-ENV:Body></SOAP-ENV:Envelope>";
  auto encoded = codec.encode(deep);
  ASSERT_TRUE(encoded.ok());

  xml::ParseLimits tiny;
  tiny.max_depth = 8;
  auto decoded = codec.decode_document(encoded.value(), 1u << 20, tiny);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kParseError);
  EXPECT_NE(decoded.error().message().find("parse limit exceeded: depth"),
            std::string::npos);
}

TEST(BxmlStaticDictionaryTest, EntriesAreUniqueAndNonEmpty) {
  auto dictionary = bxml_static_dictionary();
  ASSERT_FALSE(dictionary.empty());
  std::set<std::string_view> seen;
  for (std::string_view entry : dictionary) {
    EXPECT_FALSE(entry.empty());
    EXPECT_TRUE(seen.insert(entry).second)
        << "duplicate dictionary entry: " << entry;
  }
  // The envelope skeleton must stay at the front: wire compatibility of
  // every encoded message depends on these indices never moving.
  EXPECT_EQ(dictionary[0], "SOAP-ENV:Envelope");
}

}  // namespace
}  // namespace spi::codec
