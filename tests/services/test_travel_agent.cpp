// The travel agent orchestration end-to-end over three simulated server
// nodes — the §4.3 deployment — in both packed and unpacked modes.
#include <gtest/gtest.h>

#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "services/airline.hpp"
#include "services/creditcard.hpp"
#include "services/hotel.hpp"
#include "services/travel_agent.hpp"

namespace spi::services {
namespace {

class TravelAgentTest : public ::testing::Test {
 protected:
  void SetUp() override { rebuild(); }

  /// Builds (or rebuilds, with fresh inventory) the three-node deployment.
  void rebuild() {
    airline_client_.reset();
    hotel_client_.reset();
    card_client_.reset();
    airline_server_.reset();
    hotel_server_.reset();
    card_server_.reset();
    airline_registry_ = std::make_unique<core::ServiceRegistry>();
    hotel_registry_ = std::make_unique<core::ServiceRegistry>();
    card_registry_ = std::make_unique<core::ServiceRegistry>();

    airlines_ = make_demo_airlines(/*seed=*/11);
    for (auto& airline : airlines_) airline->register_with(*airline_registry_);
    hotels_ = make_demo_hotels(/*seed=*/11);
    for (auto& hotel : hotels_) hotel->register_with(*hotel_registry_);
    card_ = std::make_unique<CreditCardService>("CardGate", /*seed=*/11);
    card_->register_with(*card_registry_);

    airline_server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"airline-node", 80}, *airline_registry_);
    hotel_server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"hotel-node", 80}, *hotel_registry_);
    card_server_ = std::make_unique<core::SpiServer>(
        transport_, net::Endpoint{"card-node", 80}, *card_registry_);
    ASSERT_TRUE(airline_server_->start().ok());
    ASSERT_TRUE(hotel_server_->start().ok());
    ASSERT_TRUE(card_server_->start().ok());

    airline_client_ = std::make_unique<core::SpiClient>(
        transport_, airline_server_->endpoint());
    hotel_client_ = std::make_unique<core::SpiClient>(
        transport_, hotel_server_->endpoint());
    card_client_ = std::make_unique<core::SpiClient>(
        transport_, card_server_->endpoint());
  }

  TravelAgentConfig config(bool packed) {
    TravelAgentConfig cfg;
    cfg.airline_services = {"AirChina", "PacificWings", "NimbusAir"};
    cfg.hotel_services = {"GrandPalm", "SeasideInn", "LagoonResort"};
    cfg.use_packing = packed;
    return cfg;
  }

  Result<Itinerary> book(bool packed) {
    TravelAgent agent(*airline_client_, *hotel_client_, *card_client_,
                      config(packed));
    return agent.book();
  }

  net::SimTransport transport_;
  std::unique_ptr<core::ServiceRegistry> airline_registry_, hotel_registry_,
      card_registry_;
  std::vector<std::unique_ptr<Airline>> airlines_;
  std::vector<std::unique_ptr<Hotel>> hotels_;
  std::unique_ptr<CreditCardService> card_;
  std::unique_ptr<core::SpiServer> airline_server_, hotel_server_,
      card_server_;
  std::unique_ptr<core::SpiClient> airline_client_, hotel_client_,
      card_client_;
};

TEST_F(TravelAgentTest, PackedBookingProducesConfirmedItinerary) {
  auto itinerary = book(/*packed=*/true);
  ASSERT_TRUE(itinerary.ok()) << itinerary.error().to_string();

  // The paper's count: exactly eleven service invocations...
  EXPECT_EQ(itinerary.value().invocations, 11u);
  // ...in seven SOAP messages when steps 1 and 3 are packed.
  EXPECT_EQ(itinerary.value().messages, 7u);

  // Cheapest choices (fixture data): NimbusAir NB-9 + GrandPalm standard.
  EXPECT_EQ(itinerary.value().airline, "NimbusAir");
  EXPECT_EQ(itinerary.value().flight_id, "NB-9");
  EXPECT_EQ(itinerary.value().hotel, "GrandPalm");
  EXPECT_EQ(itinerary.value().room_id, "GRAND-STD");
  EXPECT_EQ(itinerary.value().flight_cents, 72'300);
  EXPECT_EQ(itinerary.value().room_cents, 18'900 * 5);
  EXPECT_EQ(itinerary.value().total_cents, 72'300 + 94'500);
  EXPECT_FALSE(itinerary.value().authorization_id.empty());

  // Server-side state reflects the booking.
  EXPECT_EQ(airlines_[2]->confirmed_reservations(), 1u);  // NimbusAir
  EXPECT_EQ(hotels_[0]->confirmed_reservations(), 1u);    // GrandPalm
  EXPECT_EQ(card_->authorized_total("4111111111111111"),
            itinerary.value().total_cents);
  EXPECT_EQ(airlines_[2]->seats_available("NB-9"), 1);
}

TEST_F(TravelAgentTest, UnpackedBookingUsesElevenMessages) {
  auto itinerary = book(/*packed=*/false);
  ASSERT_TRUE(itinerary.ok()) << itinerary.error().to_string();
  EXPECT_EQ(itinerary.value().invocations, 11u);
  EXPECT_EQ(itinerary.value().messages, 11u);
  EXPECT_EQ(itinerary.value().airline, "NimbusAir");
}

TEST_F(TravelAgentTest, PackedAndUnpackedChooseIdenticalItineraries) {
  auto packed = book(true);
  rebuild();  // fresh inventory
  auto unpacked = book(false);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(packed.value().flight_id, unpacked.value().flight_id);
  EXPECT_EQ(packed.value().room_id, unpacked.value().room_id);
  EXPECT_EQ(packed.value().total_cents, unpacked.value().total_cents);
}

TEST_F(TravelAgentTest, SurvivesOneAirlineFaulting) {
  // Unregister-like failure: a config naming a dead airline service.
  TravelAgentConfig cfg = config(true);
  cfg.airline_services = {"AirChina", "DefunctAir", "NimbusAir"};
  TravelAgent agent(*airline_client_, *hotel_client_, *card_client_, cfg);
  auto itinerary = agent.book();
  ASSERT_TRUE(itinerary.ok()) << itinerary.error().to_string();
  EXPECT_EQ(itinerary.value().airline, "NimbusAir");  // still found cheapest
}

TEST_F(TravelAgentTest, FailsCleanlyWhenNoFlightsMatch) {
  TravelAgentConfig cfg = config(true);
  cfg.origin = "XXX";
  TravelAgent agent(*airline_client_, *hotel_client_, *card_client_, cfg);
  auto itinerary = agent.book();
  ASSERT_FALSE(itinerary.ok());
  EXPECT_EQ(itinerary.error().code(), ErrorCode::kNotFound);
  // Nothing was reserved anywhere.
  for (auto& airline : airlines_) {
    EXPECT_EQ(airline->pending_reservations(), 0u);
  }
}

TEST_F(TravelAgentTest, FailsWhenCardDeclined) {
  TravelAgentConfig cfg = config(true);
  cfg.card_number = "4111111111111112";  // Luhn-invalid
  TravelAgent agent(*airline_client_, *hotel_client_, *card_client_, cfg);
  auto itinerary = agent.book();
  ASSERT_FALSE(itinerary.ok());
  EXPECT_EQ(itinerary.error().code(), ErrorCode::kFault);
  // Seats were reserved but never confirmed (the paper's scenario has no
  // compensation step; we assert the observable state).
  EXPECT_EQ(airlines_[2]->pending_reservations(), 1u);
  EXPECT_EQ(airlines_[2]->confirmed_reservations(), 0u);
}

TEST_F(TravelAgentTest, ConsecutiveBookingsDrainInventory) {
  // NB-9 has 2 seats; the third booking must fall back to PacificWings.
  ASSERT_TRUE(book(true).ok());
  ASSERT_TRUE(book(true).ok());
  auto third = book(true);
  ASSERT_TRUE(third.ok()) << third.error().to_string();
  EXPECT_EQ(third.value().airline, "PacificWings");
  EXPECT_EQ(third.value().flight_id, "PW-77");
}

TEST_F(TravelAgentTest, RejectsEmptyServiceLists) {
  TravelAgentConfig cfg = config(true);
  cfg.airline_services.clear();
  EXPECT_THROW(
      TravelAgent(*airline_client_, *hotel_client_, *card_client_, cfg),
      SpiError);
}

}  // namespace
}  // namespace spi::services
