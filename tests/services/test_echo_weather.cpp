#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "services/echo.hpp"
#include "services/weather.hpp"

namespace spi::services {
namespace {

using core::make_call;
using soap::Value;

class EchoServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { register_echo_service(registry_); }
  core::ServiceRegistry registry_;
};

TEST_F(EchoServiceTest, EchoReturnsInputUnchanged) {
  Value input(soap::Struct{{"nested", Value(soap::Array{Value(1), Value("x")})}});
  auto outcome =
      registry_.invoke(make_call("EchoService", "Echo", {{"data", input}}));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), input);
}

TEST_F(EchoServiceTest, EchoWithoutDataFaults) {
  auto outcome = registry_.invoke(make_call("EchoService", "Echo"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(EchoServiceTest, ReverseReversesBytes) {
  auto outcome = registry_.invoke(
      make_call("EchoService", "Reverse", {{"data", Value("abc")}}));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().as_string(), "cba");
}

TEST_F(EchoServiceTest, ReverseRequiresString) {
  auto outcome = registry_.invoke(
      make_call("EchoService", "Reverse", {{"data", Value(5)}}));
  EXPECT_FALSE(outcome.ok());
}

TEST_F(EchoServiceTest, LengthCountsBytes) {
  auto outcome = registry_.invoke(
      make_call("EchoService", "Length", {{"data", Value("12345")}}));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().as_int(), 5);
}

TEST_F(EchoServiceTest, DelaySleepsAndEchoesDuration) {
  Stopwatch stopwatch;
  auto outcome = registry_.invoke(
      make_call("EchoService", "Delay", {{"milliseconds", Value(15)}}));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().as_int(), 15);
  EXPECT_GE(stopwatch.elapsed_ms(), 14.0);
}

TEST_F(EchoServiceTest, DelayRejectsOutOfRange) {
  EXPECT_FALSE(registry_
                   .invoke(make_call("EchoService", "Delay",
                                     {{"milliseconds", Value(-1)}}))
                   .ok());
  EXPECT_FALSE(registry_
                   .invoke(make_call("EchoService", "Delay",
                                     {{"milliseconds", Value(999'999)}}))
                   .ok());
}

TEST(EchoServiceOptionsTest, CustomNameAndDelayCap) {
  core::ServiceRegistry registry;
  EchoOptions options;
  options.max_delay_ms = 5;
  register_echo_service(registry, "Bounce", options);
  EXPECT_TRUE(registry.find("Bounce", "Echo").ok());
  EXPECT_FALSE(registry
                   .invoke(make_call("Bounce", "Delay",
                                     {{"milliseconds", Value(6)}}))
                   .ok());
}

class WeatherServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { register_weather_service(registry_); }
  core::ServiceRegistry registry_;
};

TEST_F(WeatherServiceTest, KnownCitiesReturnForecasts) {
  auto outcome = registry_.invoke(
      make_call("WeatherService", "GetWeather", {{"city", Value("Beijing")}}));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().field("city")->as_string(), "Beijing");
  EXPECT_EQ(outcome.value().field("condition")->as_string(), "Sunny");
  EXPECT_EQ(outcome.value().field("temperature_c")->as_int(), 31);
}

TEST_F(WeatherServiceTest, UnknownCityFaults) {
  auto outcome = registry_.invoke(make_call("WeatherService", "GetWeather",
                                            {{"city", Value("Atlantis")}}));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kNotFound);
}

TEST_F(WeatherServiceTest, MissingCityParameterFaults) {
  auto outcome = registry_.invoke(make_call("WeatherService", "GetWeather"));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(WeatherServiceTest, ListCitiesCoversGetWeatherTable) {
  auto cities = registry_.invoke(make_call("WeatherService", "ListCities"));
  ASSERT_TRUE(cities.ok());
  const soap::Array& list = cities.value().as_array();
  EXPECT_GE(list.size(), 8u);
  // Every listed city must have a forecast.
  for (const Value& city : list) {
    auto forecast = registry_.invoke(
        make_call("WeatherService", "GetWeather", {{"city", city}}));
    EXPECT_TRUE(forecast.ok()) << city.as_string();
  }
}

}  // namespace
}  // namespace spi::services
