// Airline / Hotel / CreditCard back-ends: reservation lifecycle, inventory
// invariants, concurrency safety, and the Luhn validator.
#include <gtest/gtest.h>

#include <thread>

#include "services/airline.hpp"
#include "services/creditcard.hpp"
#include "services/hotel.hpp"

namespace spi::services {
namespace {

using core::make_call;
using soap::Value;

// --- airline -----------------------------------------------------------------

class AirlineTest : public ::testing::Test {
 protected:
  Airline airline_{"TestAir",
                   {{"TA-1", "PEK", "HNL", 50'000, 2},
                    {"TA-2", "PEK", "HNL", 60'000, 1},
                    {"TA-3", "PEK", "SEA", 40'000, 5}},
                   /*seed=*/1};
};

TEST_F(AirlineTest, QueryFiltersByRoute) {
  auto outcome = airline_.query_flights(
      {{"origin", Value("PEK")}, {"destination", Value("HNL")}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().as_array().size(), 2u);

  auto none = airline_.query_flights(
      {{"origin", Value("PEK")}, {"destination", Value("LAX")}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().as_array().size() == 0);
}

TEST_F(AirlineTest, ReserveDecrementsSeats) {
  ASSERT_EQ(airline_.seats_available("TA-1"), 2);
  auto reservation = airline_.reserve({{"flight_id", Value("TA-1")}});
  ASSERT_TRUE(reservation.ok());
  EXPECT_EQ(airline_.seats_available("TA-1"), 1);
  EXPECT_EQ(reservation.value().field("flight_id")->as_string(), "TA-1");
  EXPECT_EQ(reservation.value().field("price_cents")->as_int(), 50'000);
  EXPECT_FALSE(
      reservation.value().field("reservation_id")->as_string().empty());
}

TEST_F(AirlineTest, SoldOutFlightRejectsReservation) {
  ASSERT_TRUE(airline_.reserve({{"flight_id", Value("TA-2")}}).ok());
  auto second = airline_.reserve({{"flight_id", Value("TA-2")}});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kCapacityExceeded);
  // Sold-out flights disappear from queries.
  auto flights = airline_.query_flights(
      {{"origin", Value("PEK")}, {"destination", Value("HNL")}});
  EXPECT_EQ(flights.value().as_array().size(), 1u);
}

TEST_F(AirlineTest, UnknownFlightRejected) {
  auto outcome = airline_.reserve({{"flight_id", Value("NOPE-1")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kNotFound);
}

TEST_F(AirlineTest, ConfirmLifecycle) {
  auto reservation = airline_.reserve({{"flight_id", Value("TA-1")}});
  std::string id =
      reservation.value().field("reservation_id")->as_string();
  EXPECT_EQ(airline_.pending_reservations(), 1u);

  auto confirmed = airline_.confirm_reservation(
      {{"reservation_id", Value(id)}, {"authorization_id", Value("AUTH-1")}});
  ASSERT_TRUE(confirmed.ok());
  EXPECT_EQ(airline_.confirmed_reservations(), 1u);
  EXPECT_EQ(airline_.pending_reservations(), 0u);

  // Double confirmation is rejected.
  EXPECT_FALSE(airline_
                   .confirm_reservation({{"reservation_id", Value(id)},
                                         {"authorization_id", Value("A2")}})
                   .ok());
  // Confirmed reservations cannot be cancelled.
  EXPECT_FALSE(
      airline_.cancel_reservation({{"reservation_id", Value(id)}}).ok());
}

TEST_F(AirlineTest, CancelReturnsSeatToInventory) {
  auto reservation = airline_.reserve({{"flight_id", Value("TA-1")}});
  std::string id =
      reservation.value().field("reservation_id")->as_string();
  ASSERT_EQ(airline_.seats_available("TA-1"), 1);
  ASSERT_TRUE(
      airline_.cancel_reservation({{"reservation_id", Value(id)}}).ok());
  EXPECT_EQ(airline_.seats_available("TA-1"), 2);
  EXPECT_EQ(airline_.pending_reservations(), 0u);
}

TEST_F(AirlineTest, ConfirmUnknownReservationRejected) {
  EXPECT_FALSE(airline_
                   .confirm_reservation({{"reservation_id", Value("ghost")},
                                         {"authorization_id", Value("A")}})
                   .ok());
}

TEST_F(AirlineTest, ConcurrentReservationsNeverOversell) {
  // TA-3 has 5 seats; 20 threads race for them.
  std::atomic<int> successes{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 20; ++t) {
      threads.emplace_back([&] {
        if (airline_.reserve({{"flight_id", Value("TA-3")}}).ok()) {
          ++successes;
        }
      });
    }
  }
  EXPECT_EQ(successes.load(), 5);
  EXPECT_EQ(airline_.seats_available("TA-3"), 0);
}

TEST(AirlineRegistryTest, RegistersAllOperations) {
  core::ServiceRegistry registry;
  auto airlines = make_demo_airlines(7);
  for (auto& airline : airlines) airline->register_with(registry);
  EXPECT_EQ(registry.service_names().size(), 3u);
  for (const auto& name : {"AirChina", "PacificWings", "NimbusAir"}) {
    EXPECT_TRUE(registry.find(name, "QueryFlights").ok()) << name;
    EXPECT_TRUE(registry.find(name, "Reserve").ok()) << name;
    EXPECT_TRUE(registry.find(name, "ConfirmReservation").ok()) << name;
    EXPECT_TRUE(registry.find(name, "CancelReservation").ok()) << name;
  }
}

TEST(AirlineDemoDataTest, NimbusIsCheapestToHonolulu) {
  auto airlines = make_demo_airlines(7);
  std::int64_t best = INT64_MAX;
  std::string best_airline;
  for (auto& airline : airlines) {
    auto flights = airline->query_flights(
        {{"origin", Value("PEK")}, {"destination", Value("HNL")}});
    for (const Value& flight : flights.value().as_array()) {
      if (flight.field("price_cents")->as_int() < best) {
        best = flight.field("price_cents")->as_int();
        best_airline = flight.field("airline")->as_string();
      }
    }
  }
  EXPECT_EQ(best_airline, "NimbusAir");
  EXPECT_EQ(best, 72'300);
}

// --- hotel ---------------------------------------------------------------------

class HotelTest : public ::testing::Test {
 protected:
  Hotel hotel_{"TestInn",
               {{"STD", "Honolulu", "standard", 10'000, 2},
                {"STE", "Honolulu", "suite", 30'000, 1},
                {"ELS", "Elsewhere", "standard", 5'000, 9}},
               /*seed=*/2};
};

TEST_F(HotelTest, QueryComputesTotalForStay) {
  auto outcome = hotel_.query_rooms(
      {{"city", Value("Honolulu")}, {"nights", Value(5)}});
  ASSERT_TRUE(outcome.ok());
  const soap::Array& rooms = outcome.value().as_array();
  ASSERT_EQ(rooms.size(), 2u);
  for (const Value& room : rooms) {
    EXPECT_EQ(room.field("total_cents")->as_int(),
              room.field("rate_cents_per_night")->as_int() * 5);
  }
}

TEST_F(HotelTest, QueryRejectsNonPositiveNights) {
  EXPECT_FALSE(
      hotel_.query_rooms({{"city", Value("Honolulu")}, {"nights", Value(0)}})
          .ok());
  EXPECT_FALSE(
      hotel_.reserve({{"room_id", Value("STD")}, {"nights", Value(-2)}})
          .ok());
}

TEST_F(HotelTest, ReserveConfirmCancelLifecycle) {
  auto reservation =
      hotel_.reserve({{"room_id", Value("STD")}, {"nights", Value(3)}});
  ASSERT_TRUE(reservation.ok());
  EXPECT_EQ(reservation.value().field("total_cents")->as_int(), 30'000);
  EXPECT_EQ(hotel_.rooms_available("STD"), 1);
  std::string id = reservation.value().field("reservation_id")->as_string();

  ASSERT_TRUE(hotel_
                  .confirm_reservation({{"reservation_id", Value(id)},
                                        {"authorization_id", Value("A")}})
                  .ok());
  EXPECT_EQ(hotel_.confirmed_reservations(), 1u);
  EXPECT_FALSE(hotel_.cancel_reservation({{"reservation_id", Value(id)}}).ok());

  // A second reservation can still be cancelled back into inventory.
  auto second =
      hotel_.reserve({{"room_id", Value("STD")}, {"nights", Value(1)}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(hotel_.rooms_available("STD"), 0);
  ASSERT_TRUE(hotel_
                  .cancel_reservation(
                      {{"reservation_id",
                        Value(second.value().field("reservation_id")
                                  ->as_string())}})
                  .ok());
  EXPECT_EQ(hotel_.rooms_available("STD"), 1);
}

TEST_F(HotelTest, NoRoomsLeftRejected) {
  ASSERT_TRUE(
      hotel_.reserve({{"room_id", Value("STE")}, {"nights", Value(1)}}).ok());
  auto outcome =
      hotel_.reserve({{"room_id", Value("STE")}, {"nights", Value(1)}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kCapacityExceeded);
}

TEST(HotelDemoDataTest, GrandPalmHasCheapestStandardRoom) {
  auto hotels = make_demo_hotels(3);
  std::int64_t best = INT64_MAX;
  std::string best_hotel;
  for (auto& hotel : hotels) {
    auto rooms = hotel->query_rooms(
        {{"city", Value("Honolulu")}, {"nights", Value(1)}});
    for (const Value& room : rooms.value().as_array()) {
      if (room.field("total_cents")->as_int() < best) {
        best = room.field("total_cents")->as_int();
        best_hotel = room.field("hotel")->as_string();
      }
    }
  }
  EXPECT_EQ(best_hotel, "GrandPalm");
}

// --- credit card -----------------------------------------------------------------

TEST(LuhnTest, AcceptsKnownValidNumbers) {
  EXPECT_TRUE(luhn_valid("4111111111111111"));  // Visa test PAN
  EXPECT_TRUE(luhn_valid("5500005555555559"));
  EXPECT_TRUE(luhn_valid("4012888888881881"));
  // 11 digits is below the PAN length floor even though the checksum holds.
  EXPECT_FALSE(luhn_valid("79927398713"));
}

TEST(LuhnTest, RejectsInvalidNumbers) {
  EXPECT_FALSE(luhn_valid("4111111111111112"));
  EXPECT_FALSE(luhn_valid("1234567890123456"));
  EXPECT_FALSE(luhn_valid(""));
  EXPECT_FALSE(luhn_valid("41111111"));           // too short
  EXPECT_FALSE(luhn_valid("41111111111111111111"));  // too long
  EXPECT_FALSE(luhn_valid("4111-1111-1111-111"));    // non-digits
}

class CreditCardTest : public ::testing::Test {
 protected:
  CreditCardService card_{"CardGate", /*seed=*/3,
                          CreditCardOptions{/*limit_cents=*/100'000}};
  const std::string pan_ = "4111111111111111";
};

TEST_F(CreditCardTest, AuthorizeMintsAuthorizationId) {
  auto outcome = card_.authorize(
      {{"card_number", Value(pan_)}, {"amount_cents", Value(25'000)}});
  ASSERT_TRUE(outcome.ok());
  std::string auth = outcome.value().field("authorization_id")->as_string();
  EXPECT_EQ(auth.substr(0, 5), "AUTH-");
  EXPECT_EQ(outcome.value().field("amount_cents")->as_int(), 25'000);
  EXPECT_EQ(card_.authorized_total(pan_), 25'000);
}

TEST_F(CreditCardTest, RejectsInvalidCard) {
  auto outcome = card_.authorize({{"card_number", Value("4111111111111112")},
                                  {"amount_cents", Value(1)}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kInvalidArgument);
}

TEST_F(CreditCardTest, RejectsNonPositiveAmount) {
  EXPECT_FALSE(card_
                   .authorize({{"card_number", Value(pan_)},
                               {"amount_cents", Value(0)}})
                   .ok());
  EXPECT_FALSE(card_
                   .authorize({{"card_number", Value(pan_)},
                               {"amount_cents", Value(-5)}})
                   .ok());
}

TEST_F(CreditCardTest, EnforcesCumulativeLimit) {
  ASSERT_TRUE(card_
                  .authorize({{"card_number", Value(pan_)},
                              {"amount_cents", Value(90'000)}})
                  .ok());
  auto declined = card_.authorize(
      {{"card_number", Value(pan_)}, {"amount_cents", Value(20'000)}});
  ASSERT_FALSE(declined.ok());
  EXPECT_EQ(declined.error().code(), ErrorCode::kCapacityExceeded);
  // A smaller charge under the limit still goes through.
  EXPECT_TRUE(card_
                  .authorize({{"card_number", Value(pan_)},
                              {"amount_cents", Value(10'000)}})
                  .ok());
}

TEST_F(CreditCardTest, VoidReleasesHold) {
  auto outcome = card_.authorize(
      {{"card_number", Value(pan_)}, {"amount_cents", Value(60'000)}});
  std::string auth = outcome.value().field("authorization_id")->as_string();
  ASSERT_TRUE(card_.void_authorization({{"authorization_id", Value(auth)}})
                  .ok());
  EXPECT_EQ(card_.authorized_total(pan_), 0);
  // Voiding twice fails.
  EXPECT_FALSE(card_.void_authorization({{"authorization_id", Value(auth)}})
                   .ok());
}

TEST_F(CreditCardTest, RegistersWithRegistry) {
  core::ServiceRegistry registry;
  card_.register_with(registry);
  auto outcome = registry.invoke(make_call(
      "CardGate", "Authorize",
      {{"card_number", Value(pan_)}, {"amount_cents", Value(100)}}));
  EXPECT_TRUE(outcome.ok());
}

}  // namespace
}  // namespace spi::services
