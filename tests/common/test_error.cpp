#include <gtest/gtest.h>

#include "common/error.hpp"

namespace spi {
namespace {

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  Error error(ErrorCode::kParseError, "bad byte at 3");
  EXPECT_EQ(error.to_string(), "ParseError: bad byte at 3");
}

TEST(ErrorTest, ToStringWithoutMessageIsJustCode) {
  Error error(ErrorCode::kTimeout, "");
  EXPECT_EQ(error.to_string(), "Timeout");
}

TEST(ErrorTest, WrapPrependsContext) {
  Error error(ErrorCode::kConnectionClosed, "peer reset");
  Error wrapped = error.wrap("http receive");
  EXPECT_EQ(wrapped.code(), ErrorCode::kConnectionClosed);
  EXPECT_EQ(wrapped.message(), "http receive: peer reset");
}

TEST(ErrorCodeNameTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(error_code_name(static_cast<ErrorCode>(code)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Error(ErrorCode::kNotFound, "missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-7), -7);
}

TEST(ResultTest, ValueOnErrorThrows) {
  Result<int> result(Error(ErrorCode::kNotFound, "missing"));
  EXPECT_THROW(result.value(), SpiError);
}

TEST(ResultTest, ErrorOnValueThrows) {
  Result<int> result(1);
  EXPECT_THROW(result.error(), SpiError);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, WrapErrorAddsLayerContext) {
  Result<int> result(Error(ErrorCode::kParseError, "inner"));
  Error wrapped = result.wrap_error("outer");
  EXPECT_EQ(wrapped.message(), "outer: inner");
}

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.to_string(), "OK");
  EXPECT_THROW(status.error(), SpiError);
}

TEST(StatusTest, CarriesError) {
  Status status(ErrorCode::kShutdown, "stopping");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kShutdown);
  EXPECT_EQ(status.to_string(), "Shutdown: stopping");
}

TEST(SpiErrorTest, CarriesOriginalError) {
  SpiError thrown(ErrorCode::kCapacityExceeded, "queue full");
  EXPECT_EQ(thrown.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_STREQ(thrown.what(), "CapacityExceeded: queue full");
}

}  // namespace
}  // namespace spi
