#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace spi {
namespace {

/// Captures log lines for the duration of a test and restores defaults.
class LogCapture {
 public:
  LogCapture() {
    Logger::instance().set_sink([this](LogLevel level,
                                       const std::string& line) {
      std::lock_guard lock(mutex_);
      lines_.emplace_back(level, line);
    });
    previous_level_ = Logger::instance().level();
  }
  ~LogCapture() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> lines() {
    std::lock_guard lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
  LogLevel previous_level_;
};

TEST(LoggingTest, FormatsLevelComponentMessage) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  SPI_LOG(kInfo, "test.component") << "value=" << 42;
  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].first, LogLevel::kInfo);
  EXPECT_EQ(lines[0].second, "[INFO] test.component: value=42");
}

TEST(LoggingTest, LevelFiltersLowerSeverities) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kWarn);
  SPI_LOG(kDebug, "t") << "hidden";
  SPI_LOG(kInfo, "t") << "hidden too";
  SPI_LOG(kWarn, "t") << "visible";
  SPI_LOG(kError, "t") << "visible too";
  auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].second.find("visible"), std::string::npos);
}

TEST(LoggingTest, OffSilencesEverything) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kOff);
  SPI_LOG(kError, "t") << "nope";
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LoggingTest, StreamArgumentsNotEvaluatedWhenFiltered) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("costly");
  };
  SPI_LOG(kDebug, "t") << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits
  SPI_LOG(kError, "t") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, LevelNamesAreStable) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, ConcurrentLoggingDoesNotInterleaveLines) {
  LogCapture capture;
  Logger::instance().set_level(LogLevel::kInfo);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < 100; ++i) {
          SPI_LOG(kInfo, "stress") << "thread-" << t << "-line-" << i;
        }
      });
    }
  }
  auto lines = capture.lines();
  EXPECT_EQ(lines.size(), 400u);
  for (const auto& [level, line] : lines) {
    // Every captured line is a complete, well-formed record.
    EXPECT_EQ(line.find("[INFO] stress: thread-"), 0u) << line;
  }
}

}  // namespace
}  // namespace spi
