#include <gtest/gtest.h>

#include <cstdlib>

#include "common/config.hpp"

namespace spi {
namespace {

TEST(ConfigParseTest, ParsesKeyValues) {
  auto config = Config::parse("a=1\nb = two \n# comment\n\nc=3 # inline");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().size(), 3u);
  EXPECT_EQ(config.value().get("a"), "1");
  EXPECT_EQ(config.value().get("b"), "two");
  EXPECT_EQ(config.value().get("c"), "3");
}

TEST(ConfigParseTest, RejectsMissingEquals) {
  auto config = Config::parse("valid=1\nnot a pair\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.error().code(), ErrorCode::kParseError);
  EXPECT_NE(config.error().message().find("line 2"), std::string::npos);
}

TEST(ConfigParseTest, RejectsEmptyKey) {
  EXPECT_FALSE(Config::parse("=value").ok());
}

TEST(ConfigTest, GetIntParsesSigned) {
  Config config;
  config.set("pos", "42");
  config.set("neg", "-7");
  config.set("junk", "4x");
  EXPECT_EQ(config.get_int("pos"), 42);
  EXPECT_EQ(config.get_int("neg"), -7);
  EXPECT_FALSE(config.get_int("junk").has_value());
  EXPECT_EQ(config.get_int_or("absent", 9), 9);
}

TEST(ConfigTest, GetDoubleParsesAndRejects) {
  Config config;
  config.set("pi", "3.25");
  config.set("exp", "1e3");
  config.set("junk", "1.5garbage");
  EXPECT_DOUBLE_EQ(config.get_double("pi").value(), 3.25);
  EXPECT_DOUBLE_EQ(config.get_double("exp").value(), 1000.0);
  EXPECT_FALSE(config.get_double("junk").has_value());
  EXPECT_DOUBLE_EQ(config.get_double_or("absent", 2.5), 2.5);
}

TEST(ConfigTest, GetBoolUnderstandsCommonSpellings) {
  Config config;
  config.set("t1", "1");
  config.set("t2", "TRUE");
  config.set("t3", "on");
  config.set("f1", "0");
  config.set("f2", "No");
  config.set("weird", "maybe");
  EXPECT_TRUE(config.get_bool_or("t1", false));
  EXPECT_TRUE(config.get_bool_or("t2", false));
  EXPECT_TRUE(config.get_bool_or("t3", false));
  EXPECT_FALSE(config.get_bool_or("f1", true));
  EXPECT_FALSE(config.get_bool_or("f2", true));
  EXPECT_TRUE(config.get_bool_or("weird", true));  // fallback on nonsense
}

TEST(ConfigTest, MergeOverlays) {
  Config base;
  base.set("a", "1");
  base.set("b", "1");
  Config overlay;
  overlay.set("b", "2");
  overlay.set("c", "2");
  base.merge(overlay);
  EXPECT_EQ(base.get("a"), "1");
  EXPECT_EQ(base.get("b"), "2");
  EXPECT_EQ(base.get("c"), "2");
}

TEST(ConfigTest, FromEnvStripsPrefixAndLowercases) {
  ::setenv("SPITEST_FOO_BAR", "99", 1);
  ::setenv("OTHER_VAR", "x", 1);
  Config config = Config::from_env("SPITEST_");
  EXPECT_EQ(config.get("foo_bar"), "99");
  EXPECT_FALSE(config.contains("other_var"));
  ::unsetenv("SPITEST_FOO_BAR");
}

}  // namespace
}  // namespace spi
