#include <gtest/gtest.h>

#include <set>

#include "common/clock.hpp"
#include "common/random.hpp"

namespace spi {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64Test, NextBelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SplitMix64Test, AsciiStringSizeAndAlphabet) {
  SplitMix64 rng(11);
  for (size_t size : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                      size_t{1000}}) {
    std::string s = rng.ascii_string(size);
    EXPECT_EQ(s.size(), size);
    for (char c : s) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9'))
          << "bad char " << int(c);
    }
  }
}

TEST(SplitMix64Test, HexStringShape) {
  SplitMix64 rng(13);
  std::string s = rng.hex_string(16);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
  // Nonces must differ call to call.
  EXPECT_NE(s, rng.hex_string(16));
}

TEST(ManualClockTest, AdvancesOnlyExplicitly) {
  ManualClock clock;
  TimePoint t0 = clock.now();
  EXPECT_EQ(clock.now(), t0);
  clock.advance(std::chrono::milliseconds(5));
  EXPECT_EQ(clock.now() - t0, Duration(std::chrono::milliseconds(5)));
  clock.sleep_for(std::chrono::milliseconds(3));  // jumps, never blocks
  EXPECT_EQ(clock.now() - t0, Duration(std::chrono::milliseconds(8)));
}

TEST(RealClockTest, MonotonicAndSleeps) {
  RealClock& clock = RealClock::instance();
  TimePoint t0 = clock.now();
  clock.sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(clock.now() - t0, Duration(std::chrono::milliseconds(2)));
  clock.sleep_for(Duration(-1));  // negative sleeps are no-ops
}

TEST(StopwatchTest, MeasuresManualClock) {
  ManualClock clock;
  Stopwatch stopwatch(clock);
  clock.advance(std::chrono::milliseconds(250));
  EXPECT_DOUBLE_EQ(stopwatch.elapsed_ms(), 250.0);
  stopwatch.reset();
  EXPECT_DOUBLE_EQ(stopwatch.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace spi
