#include <gtest/gtest.h>

#include "common/string_util.hpp"

namespace spi {
namespace {

TEST(IEqualsTest, MatchesCaseInsensitively) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_TRUE(iequals("HOST", "host"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(IEqualsTest, DoesNotFoldNonAscii) {
  // 0xC4 vs 0xE4 (Latin-1 Ä/ä) must NOT be treated as equal.
  EXPECT_FALSE(iequals("\xC4", "\xE4"));
}

TEST(ToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(to_lower("MiXeD-123"), "mixed-123");
  EXPECT_EQ(to_lower("\xC4滚"), "\xC4滚");
}

TEST(TrimTest, StripsAsciiWhitespace) {
  EXPECT_EQ(trim("  a b \t\r\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(SplitTest, PreservesEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoSeparatorYieldsWholeString) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTrimmedTest, TrimsAndDropsEmpties) {
  auto parts = split_trimmed(" keep-alive ,  , close ", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "keep-alive");
  EXPECT_EQ(parts[1], "close");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(starts_with("HTTP/1.1", "HTTP/"));
  EXPECT_FALSE(starts_with("HT", "HTTP/"));
  EXPECT_TRUE(ends_with("file.xml", ".xml"));
  EXPECT_FALSE(ends_with("xml", ".xml"));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(ParseU64Test, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ULL);
}

TEST(ParseU64Test, RejectsGarbage) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("+1"));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64(" 12"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
}

TEST(ParseHexU64Test, AcceptsHex) {
  EXPECT_EQ(parse_hex_u64("0"), 0u);
  EXPECT_EQ(parse_hex_u64("ff"), 255u);
  EXPECT_EQ(parse_hex_u64("FF"), 255u);
  EXPECT_EQ(parse_hex_u64("1a2B"), 0x1a2bu);
}

TEST(ParseHexU64Test, RejectsGarbage) {
  EXPECT_FALSE(parse_hex_u64(""));
  EXPECT_FALSE(parse_hex_u64("0x10"));
  EXPECT_FALSE(parse_hex_u64("g"));
}

TEST(AppendNumbersTest, FormatsCorrectly) {
  std::string out = "n=";
  append_u64(out, 12345);
  EXPECT_EQ(out, "n=12345");
  out.clear();
  append_i64(out, -987);
  EXPECT_EQ(out, "-987");
}

TEST(FormatDoubleTest, RoundTripsExactly) {
  for (double v : {0.0, 1.0, -1.5, 0.1, 3.14159265358979,
                   1e-300, 1.7976931348623157e308}) {
    std::string s = format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
}

TEST(FormatDoubleTest, PrefersShortForm) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(2.0), "2");
}

}  // namespace
}  // namespace spi
