#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "common/random.hpp"

namespace spi {
namespace {

// RFC 4648 §10 test vectors.
TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foob"), "Zm9vYg==");
  EXPECT_EQ(base64_encode("fooba"), "Zm9vYmE=");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

TEST(Base64Test, DecodeVectors) {
  EXPECT_EQ(base64_decode("").value(), "");
  EXPECT_EQ(base64_decode("Zg==").value(), "f");
  EXPECT_EQ(base64_decode("Zm9vYmFy").value(), "foobar");
}

TEST(Base64Test, DecodeRejectsBadLength) {
  EXPECT_FALSE(base64_decode("Zg=").ok());
  EXPECT_FALSE(base64_decode("Z").ok());
}

TEST(Base64Test, DecodeRejectsBadCharacters) {
  EXPECT_FALSE(base64_decode("Zm9v!A==").ok());
  EXPECT_FALSE(base64_decode("Zm9v\n").ok());
}

TEST(Base64Test, DecodeRejectsMisplacedPadding) {
  EXPECT_FALSE(base64_decode("=m9v").ok());
  EXPECT_FALSE(base64_decode("Zm=v").ok());
  EXPECT_FALSE(base64_decode("Zg==Zg==").ok());  // padding mid-stream
}

TEST(Base64Test, BinaryRoundTripProperty) {
  SplitMix64 rng(0xB64);
  for (size_t size : {size_t{1}, size_t{2}, size_t{3}, size_t{20},
                      size_t{100}, size_t{1000}}) {
    std::string bytes;
    for (size_t i = 0; i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.next() & 0xff));
    }
    auto decoded = base64_decode(base64_encode(bytes));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), bytes) << "size=" << size;
  }
}

// FIPS 180-1 / well-known SHA-1 vectors.
TEST(Sha1Test, KnownVectors) {
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, MillionAs) {
  EXPECT_EQ(sha1_hex(std::string(1'000'000, 'a')),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, LengthBoundaryBlocks) {
  // 55/56/63/64/65 bytes straddle the padding boundary.
  for (size_t n : {size_t{55}, size_t{56}, size_t{63}, size_t{64},
                   size_t{65}}) {
    std::string input(n, 'x');
    EXPECT_EQ(sha1(input).size(), 20u);
    // Same input -> same digest; different length -> different digest.
    EXPECT_EQ(sha1_hex(input), sha1_hex(std::string(n, 'x')));
    EXPECT_NE(sha1_hex(input), sha1_hex(std::string(n + 1, 'x')));
  }
}

TEST(Sha1Base64Test, MatchesHexDigest) {
  auto b64 = sha1_base64("abc");
  auto decoded = base64_decode(b64);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), 20u);
  EXPECT_EQ(static_cast<unsigned char>(decoded.value()[0]), 0xa9);
  EXPECT_EQ(static_cast<unsigned char>(decoded.value()[1]), 0x99);
}

}  // namespace
}  // namespace spi
