#include <gtest/gtest.h>

#include "common/byte_buffer.hpp"

namespace spi {
namespace {

TEST(ByteBufferTest, StartsEmpty) {
  ByteBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.view(), "");
}

TEST(ByteBufferTest, AppendAndView) {
  ByteBuffer buffer;
  buffer.append("hello ");
  buffer.append("world");
  EXPECT_EQ(buffer.view(), "hello world");
  EXPECT_EQ(buffer.size(), 11u);
  EXPECT_EQ(buffer.total_appended(), 11u);
}

TEST(ByteBufferTest, ConsumeAdvancesReadCursor) {
  ByteBuffer buffer("abcdef");
  buffer.consume(2);
  EXPECT_EQ(buffer.view(), "cdef");
  buffer.consume(4);
  EXPECT_TRUE(buffer.empty());
}

TEST(ByteBufferTest, ConsumePastEndThrows) {
  ByteBuffer buffer("ab");
  EXPECT_THROW(buffer.consume(3), std::out_of_range);
}

TEST(ByteBufferTest, ReadStringCopiesAndConsumes) {
  ByteBuffer buffer("request body");
  EXPECT_EQ(buffer.read_string(7), "request");
  EXPECT_EQ(buffer.view(), " body");
  EXPECT_THROW(buffer.read_string(99), std::out_of_range);
}

TEST(ByteBufferTest, FindSearchesUnconsumedOnly) {
  ByteBuffer buffer("xx\r\nrest");
  EXPECT_EQ(buffer.find("\r\n"), 2u);
  buffer.consume(4);
  EXPECT_EQ(buffer.find("\r\n"), ByteBuffer::npos);
  EXPECT_EQ(buffer.find("rest"), 0u);
}

TEST(ByteBufferTest, ClearResetsEverythingButTotals) {
  ByteBuffer buffer("abc");
  buffer.clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.total_appended(), 3u);
}

TEST(ByteBufferTest, InterleavedAppendConsumeKeepsDataIntact) {
  // Exercises lazy compaction: many partial consumes with appends between.
  ByteBuffer buffer;
  std::string expected;
  std::string drained;
  for (int i = 0; i < 2000; ++i) {
    std::string chunk = "chunk-" + std::to_string(i) + ";";
    buffer.append(chunk);
    expected += chunk;
    if (i % 3 == 0 && buffer.size() >= 5) {
      drained += buffer.read_string(5);
    }
  }
  drained += buffer.read_string(buffer.size());
  EXPECT_EQ(drained, expected);
}

TEST(ByteBufferTest, EmptyAppendIsANoOp) {
  ByteBuffer buffer("x");
  buffer.append("");
  EXPECT_EQ(buffer.view(), "x");
}

}  // namespace
}  // namespace spi
