// MetricsRegistry: registration semantics and the Prometheus text
// exposition format (version 0.0.4) that GET /metrics serves.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace spi::telemetry {
namespace {

TEST(MetricsRegistryTest, CounterExposition) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("spi_test_hits_total", "Hits observed");
  hits.inc();
  hits.inc(2);
  EXPECT_EQ(hits.value(), 3u);

  std::string text = registry.expose();
  EXPECT_NE(text.find("# HELP spi_test_hits_total Hits observed\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE spi_test_hits_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_hits_total 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, GaugeWithLabels) {
  MetricsRegistry registry;
  Gauge& depth =
      registry.gauge("spi_test_depth", "Queue depth", "pool=\"app\"");
  depth.set(5);
  depth.sub(7);
  std::string text = registry.expose();
  EXPECT_NE(text.find("# TYPE spi_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("spi_test_depth{pool=\"app\"} -2\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("spi_test_total", "h");
  Counter& b = registry.counter("spi_test_total", "h");
  EXPECT_EQ(&a, &b);
  // A different label set is a different series of the same family.
  Counter& c = registry.counter("spi_test_total", "h", "side=\"x\"");
  EXPECT_NE(&a, &c);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistryTest, KindMismatchAndBadNamesThrow) {
  MetricsRegistry registry;
  registry.counter("spi_test_total", "h");
  EXPECT_THROW(registry.gauge("spi_test_total", "h"), SpiError);
  EXPECT_THROW(registry.counter("0bad", "h"), SpiError);
  EXPECT_THROW(registry.counter("has space", "h"), SpiError);
  EXPECT_THROW(registry.counter("", "h"), SpiError);
}

TEST(MetricsRegistryTest, HelpAndTypeEmittedOncePerFamily) {
  MetricsRegistry registry;
  registry.histogram("spi_test_seconds", "Stage time", "stage=\"a\"");
  registry.histogram("spi_test_seconds", "Stage time", "stage=\"b\"");
  std::string text = registry.expose();
  size_t first = text.find("# TYPE spi_test_seconds histogram");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE spi_test_seconds histogram", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, DimensionlessHistogramLadder) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("spi_test_width", "Fan-out widths", {},
                                    HistogramUnit::kNone);
  h.observe(1);
  h.observe(3);
  h.observe(400);

  std::string text = registry.expose();
  // Cumulative 1-2-5 ladder in native units: the log bucket holding each
  // observation lands at the first bound >= its upper edge.
  EXPECT_NE(text.find("spi_test_width_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_width_bucket{le=\"5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_width_bucket{le=\"500\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_width_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_width_sum 404\n"), std::string::npos);
  EXPECT_NE(text.find("spi_test_width_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, MicrosecondHistogramExposedInSeconds) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("spi_test_latency_seconds", "Latency");
  h.record_us(1000);  // 1ms

  std::string text = registry.expose();
  // Bounds scale to seconds: the 1us..10s ladder becomes 1e-06..10.
  EXPECT_NE(text.find("spi_test_latency_seconds_bucket{le=\"1e-06\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_latency_seconds_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_latency_seconds_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  // _sum is in seconds too.
  EXPECT_NE(text.find("spi_test_latency_seconds_sum 0.001\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_latency_seconds_count 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, CallbackSeriesComputedAtScrape) {
  MetricsRegistry registry;
  double value = 41.0;
  registry.add_callback("spi_test_cb_total", "Scrape-time view",
                        CallbackKind::kCounter, {},
                        [&value] { return value; });
  value = 42.5;
  std::string text = registry.expose();
  EXPECT_NE(text.find("# TYPE spi_test_cb_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("spi_test_cb_total 42.5\n"), std::string::npos);

  // Re-registering the same name+labels replaces the callback.
  registry.add_callback("spi_test_cb_total", "Scrape-time view",
                        CallbackKind::kCounter, {}, [] { return 7.0; });
  EXPECT_NE(registry.expose().find("spi_test_cb_total 7\n"),
            std::string::npos);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentRecordingWhileScraping) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("spi_test_hits_total", "h");
  Histogram& lat = registry.histogram("spi_test_seconds", "h");
  constexpr int kPerThread = 5000;
  std::vector<std::jthread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        hits.inc();
        lat.record_us(static_cast<double>(i % 1000));
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)registry.expose();  // must not tear or crash mid-recording
  }
  writers.clear();
  EXPECT_EQ(hits.value(), 4u * kPerThread);
  EXPECT_EQ(lat.count(), 4u * kPerThread);
}

}  // namespace
}  // namespace spi::telemetry
