#include <gtest/gtest.h>

#include "xml/text.hpp"

namespace spi::xml {
namespace {

TEST(EscapeTextTest, EscapesMarkupCharacters) {
  EXPECT_EQ(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
  EXPECT_EQ(escape_text("no markup"), "no markup");
  EXPECT_EQ(escape_text(""), "");
  // Quotes are legal in character data.
  EXPECT_EQ(escape_text("\"quoted\" 'single'"), "\"quoted\" 'single'");
}

TEST(EscapeAttributeTest, EscapesQuotesAndWhitespace) {
  EXPECT_EQ(escape_attribute("a\"b"), "a&quot;b");
  EXPECT_EQ(escape_attribute("a<b>&"), "a&lt;b&gt;&amp;");
  EXPECT_EQ(escape_attribute("tab\there"), "tab&#9;here");
  EXPECT_EQ(escape_attribute("line\nbreak"), "line&#10;break");
}

TEST(UnescapeTest, ExpandsNamedEntities) {
  EXPECT_EQ(unescape("&amp;&lt;&gt;&quot;&apos;").value(), "&<>\"'");
  EXPECT_EQ(unescape("plain").value(), "plain");
}

TEST(UnescapeTest, ExpandsNumericReferences) {
  EXPECT_EQ(unescape("&#65;&#66;").value(), "AB");
  EXPECT_EQ(unescape("&#x41;&#x42;").value(), "AB");
  EXPECT_EQ(unescape("&#x4E2D;").value(), "中");
  EXPECT_EQ(unescape("&#128169;").value(), "\xF0\x9F\x92\xA9");
}

TEST(UnescapeTest, RejectsMalformedEntities) {
  EXPECT_FALSE(unescape("&amp").ok());       // unterminated
  EXPECT_FALSE(unescape("&bogus;").ok());    // unknown
  EXPECT_FALSE(unescape("&#;").ok());        // empty numeric
  EXPECT_FALSE(unescape("&#x;").ok());       // empty hex
  EXPECT_FALSE(unescape("&#xG;").ok());      // bad hex digit
  EXPECT_FALSE(unescape("&#12a;").ok());     // bad decimal digit
  EXPECT_FALSE(unescape("&#1114112;").ok()); // > U+10FFFF
  EXPECT_FALSE(unescape("&#xD800;").ok());   // surrogate
}

TEST(EscapeUnescapeTest, RoundTripProperty) {
  for (std::string_view sample :
       {"a<b>&c\"d'e", "", "&&&", "<<<>>>", "mixed & <tags> everywhere",
        "unicode 中文 ok"}) {
    auto back = unescape(escape_text(sample));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), sample);
  }
}

TEST(IsValidNameTest, AcceptsXmlNames) {
  EXPECT_TRUE(is_valid_name("element"));
  EXPECT_TRUE(is_valid_name("SOAP-ENV:Body"));
  EXPECT_TRUE(is_valid_name("_private"));
  EXPECT_TRUE(is_valid_name("a1-b2.c3"));
  EXPECT_TRUE(is_valid_name("中文"));
}

TEST(IsValidNameTest, RejectsInvalidNames) {
  EXPECT_FALSE(is_valid_name(""));
  EXPECT_FALSE(is_valid_name("1abc"));
  EXPECT_FALSE(is_valid_name("-abc"));
  EXPECT_FALSE(is_valid_name("has space"));
  EXPECT_FALSE(is_valid_name("lt<"));
}

TEST(AppendUtf8Test, EncodesBoundaryCodePoints) {
  auto encode = [](std::uint32_t cp) {
    std::string out;
    EXPECT_TRUE(append_utf8(out, cp));
    return out;
  };
  EXPECT_EQ(encode(0x24), "\x24");
  EXPECT_EQ(encode(0x7F), "\x7F");
  EXPECT_EQ(encode(0x80), "\xC2\x80");
  EXPECT_EQ(encode(0x7FF), "\xDF\xBF");
  EXPECT_EQ(encode(0x800), "\xE0\xA0\x80");
  EXPECT_EQ(encode(0xFFFF), "\xEF\xBF\xBF");
  EXPECT_EQ(encode(0x10000), "\xF0\x90\x80\x80");
  EXPECT_EQ(encode(0x10FFFF), "\xF4\x8F\xBF\xBF");
}

TEST(AppendUtf8Test, RejectsInvalidCodePoints) {
  std::string out;
  EXPECT_FALSE(append_utf8(out, 0xD800));
  EXPECT_FALSE(append_utf8(out, 0xDFFF));
  EXPECT_FALSE(append_utf8(out, 0x110000));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace spi::xml
