#include <gtest/gtest.h>

#include "common/random.hpp"
#include "xml/trie.hpp"

namespace spi::xml {
namespace {

TEST(TagTrieTest, InsertAssignsDenseIds) {
  TagTrie trie;
  EXPECT_EQ(trie.insert("Body"), 0);
  EXPECT_EQ(trie.insert("Header"), 1);
  EXPECT_EQ(trie.insert("Fault"), 2);
  EXPECT_EQ(trie.size(), 3u);
}

TEST(TagTrieTest, ReinsertReturnsExistingId) {
  TagTrie trie;
  int id = trie.insert("Call");
  EXPECT_EQ(trie.insert("Call"), id);
  EXPECT_EQ(trie.size(), 1u);
}

TEST(TagTrieTest, FindExact) {
  TagTrie trie;
  trie.insert("Envelope");
  trie.insert("Env");  // prefix of another tag
  EXPECT_EQ(trie.find("Envelope"), 0);
  EXPECT_EQ(trie.find("Env"), 1);
  EXPECT_EQ(trie.find("Enve"), TagTrie::kNotFound);   // interior node
  EXPECT_EQ(trie.find("Envelopes"), TagTrie::kNotFound);
  EXPECT_EQ(trie.find("X"), TagTrie::kNotFound);
  EXPECT_EQ(trie.find(""), TagTrie::kNotFound);
}

TEST(TagTrieTest, FindLocalStripsPrefix) {
  TagTrie trie;
  trie.insert("Body");
  EXPECT_EQ(trie.find_local("SOAP-ENV:Body"), 0);
  EXPECT_EQ(trie.find_local("Body"), 0);
  EXPECT_EQ(trie.find_local("ns:other:Body"), 0);  // last colon wins
  EXPECT_EQ(trie.find_local("SOAP-ENV:Fault"), TagTrie::kNotFound);
}

TEST(TagTrieTest, AgreesWithLinearMatcherOnRandomTags) {
  TagTrie trie;
  LinearTagMatcher linear;
  SplitMix64 rng(0x7817);
  std::vector<std::string> tags;
  for (int i = 0; i < 200; ++i) {
    tags.push_back(rng.ascii_string(1 + rng.next_below(12)));
  }
  for (const auto& tag : tags) {
    int a = trie.insert(tag);
    int b = linear.insert(tag);
    EXPECT_EQ(a, b) << tag;
  }
  for (int i = 0; i < 1000; ++i) {
    std::string probe = rng.next_below(2) == 0
                            ? tags[rng.next_below(tags.size())]
                            : rng.ascii_string(1 + rng.next_below(12));
    EXPECT_EQ(trie.find(probe), linear.find(probe)) << probe;
  }
}

TEST(TagTrieTest, NodeCountGrowsSublinearlyOnSharedPrefixes) {
  TagTrie shared;
  shared.insert("ConfirmReservation");
  size_t base = shared.node_count();
  shared.insert("ConfirmPayment");  // shares "Confirm"
  // Only the divergent suffix adds nodes.
  EXPECT_LT(shared.node_count() - base, std::string("ConfirmPayment").size());
}

TEST(LinearTagMatcherTest, BasicBehaviour) {
  LinearTagMatcher matcher;
  EXPECT_EQ(matcher.insert("a"), 0);
  EXPECT_EQ(matcher.insert("b"), 1);
  EXPECT_EQ(matcher.insert("a"), 0);
  EXPECT_EQ(matcher.find("b"), 1);
  EXPECT_EQ(matcher.find("c"), -1);
  EXPECT_EQ(matcher.find_local("ns:b"), 1);
}

}  // namespace
}  // namespace spi::xml
