#include <gtest/gtest.h>

#include "common/arena.hpp"
#include "common/random.hpp"
#include "xml/parser.hpp"

namespace spi::xml {
namespace {

TEST(DomTest, BuildsTree) {
  auto doc = parse_document(
      R"(<root a="1"><child>one</child><child>two</child><other/></root>)");
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  const Element& root = doc.value().root;
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.attribute("a"), "1");
  ASSERT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.children[0].text, "one");
  EXPECT_EQ(root.children[1].text, "two");
}

TEST(DomTest, LocalNameStripsPrefix) {
  auto doc = parse_document("<SOAP-ENV:Body><spi:Call/></SOAP-ENV:Body>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.local_name(), "Body");
  EXPECT_EQ(doc.value().root.children[0].local_name(), "Call");
}

TEST(DomTest, FirstChildMatchesByLocalName) {
  auto doc = parse_document("<r><ns:a/><b/><a/></r>");
  ASSERT_TRUE(doc.ok());
  const Element* a = doc.value().root.first_child("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name, "ns:a");  // first match in document order
  EXPECT_EQ(doc.value().root.first_child("zzz"), nullptr);
}

TEST(DomTest, ChildrenNamedReturnsAllMatches) {
  auto doc = parse_document("<r><x/><y/><ns:x/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.children_named("x").size(), 2u);
  EXPECT_EQ(doc.value().root.children_named("y").size(), 1u);
}

TEST(DomTest, MixedTextIsConcatenated) {
  auto doc = parse_document("<r>one<e/>two</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.text, "onetwo");
}

TEST(DomTest, TextTrimmedStripsWhitespace) {
  auto doc = parse_document("<r>\n   padded   \n</r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.text_trimmed(), "padded");
}

TEST(DomTest, CommentsAndPisAreDropped) {
  auto doc = parse_document("<r><!-- c --><?pi?><e/></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.children.size(), 1u);
}

TEST(DomTest, DeepNesting) {
  std::string input, closers;
  for (int i = 0; i < 200; ++i) {
    input += "<d" + std::to_string(i) + ">";
    closers = "</d" + std::to_string(i) + ">" + closers;
  }
  auto doc = parse_document(input + closers);
  ASSERT_TRUE(doc.ok());
  const Element* cursor = &doc.value().root;
  int depth = 1;
  while (!cursor->children.empty()) {
    cursor = &cursor->children.front();
    ++depth;
  }
  EXPECT_EQ(depth, 200);
}

TEST(DomTest, ManySiblingsPreserveOrder) {
  std::string input = "<r>";
  for (int i = 0; i < 500; ++i) {
    input += "<c>" + std::to_string(i) + "</c>";
  }
  input += "</r>";
  auto doc = parse_document(input);
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().root.children.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(doc.value().root.children[i].text, std::to_string(i));
  }
}

TEST(DomTest, ToStringReserializes) {
  std::string input = R"(<r a="1"><b>x&amp;y</b><c/></r>)";
  auto doc = parse_document(input);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.to_string(), input);
}

// Property: parse(serialize(parse(x))) == parse(x) for generated trees.
// Element fields are views, so generated strings are interned into a
// test-owned arena that outlives the tree.
Element random_element(SplitMix64& rng, int depth, MonotonicArena& arena) {
  Element element;
  element.name = arena.intern("e" + std::to_string(rng.next_below(50)));
  size_t attrs = rng.next_below(3);
  for (size_t a = 0; a < attrs; ++a) {
    std::string name = "a" + std::to_string(a);
    element.attributes.push_back(
        Attribute{arena.intern(name),
                  arena.intern(rng.ascii_string(rng.next_below(10)))});
  }
  if (depth > 0 && rng.next_below(2) == 0) {
    size_t kids = 1 + rng.next_below(4);
    for (size_t k = 0; k < kids; ++k) {
      element.children.push_back(random_element(rng, depth - 1, arena));
    }
  } else {
    element.text = arena.intern(rng.ascii_string(rng.next_below(20)));
  }
  return element;
}

TEST(DomPropertyTest, SerializeParseRoundTrip) {
  SplitMix64 rng(0xD0);
  for (int round = 0; round < 50; ++round) {
    MonotonicArena arena;
    Element original = random_element(rng, 4, arena);
    auto reparsed = parse_document(original.to_string());
    ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
    EXPECT_EQ(reparsed.value().root, original) << "round " << round;
  }
}

TEST(DomPropertyTest, RoundTripWithSpecialCharacters) {
  Element element;
  element.name = "payload";
  element.text = "a<b>&c\"d'e &#x; &amp;";
  element.attributes.push_back(Attribute{"attr", "<>&\"'\t\n"});
  auto reparsed = parse_document(element.to_string());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().root, element);
}

}  // namespace
}  // namespace spi::xml
