#include <gtest/gtest.h>

#include "xml/parser.hpp"

namespace spi::xml {
namespace {

// Tokens borrow from parser-owned storage, so tests that outlive the
// parse collect deep-copied OwnedTokens.
std::vector<OwnedToken> tokenize(std::string_view input) {
  PullParser parser(input);
  std::vector<OwnedToken> tokens;
  while (true) {
    auto token = parser.next();
    EXPECT_TRUE(token.ok()) << token.error().to_string();
    if (!token.ok() || token.value().type == TokenType::kEndOfDocument) break;
    tokens.emplace_back(token.value());
  }
  return tokens;
}

Error parse_error(std::string_view input) {
  PullParser parser(input);
  while (true) {
    auto token = parser.next();
    if (!token.ok()) return token.error();
    if (token.value().type == TokenType::kEndOfDocument) {
      ADD_FAILURE() << "expected a parse error for: " << input;
      return Error(ErrorCode::kOk, "");
    }
  }
}

TEST(PullParserTest, SimpleElementTokens) {
  auto tokens = tokenize("<a>text</a>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kStartElement);
  EXPECT_EQ(tokens[0].name, "a");
  EXPECT_EQ(tokens[1].type, TokenType::kText);
  EXPECT_EQ(tokens[1].text, "text");
  EXPECT_EQ(tokens[2].type, TokenType::kEndElement);
}

TEST(PullParserTest, SelfClosingSynthesizesEnd) {
  auto tokens = tokenize("<a><b/></a>");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kStartElement);
  EXPECT_TRUE(tokens[1].self_closing);
  EXPECT_EQ(tokens[2].type, TokenType::kEndElement);
  EXPECT_EQ(tokens[2].name, "b");
}

TEST(PullParserTest, AttributesBothQuoteStyles) {
  auto tokens = tokenize(R"(<e a="1" b='2' c = "three"/>)");
  ASSERT_GE(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].attributes.size(), 3u);
  EXPECT_EQ(tokens[0].attributes[0], (OwnedAttribute{"a", "1"}));
  EXPECT_EQ(tokens[0].attributes[1], (OwnedAttribute{"b", "2"}));
  EXPECT_EQ(tokens[0].attributes[2], (OwnedAttribute{"c", "three"}));
}

TEST(PullParserTest, AttributeEntitiesExpanded) {
  auto tokens = tokenize(R"(<e a="x&amp;y&#33;"/>)");
  EXPECT_EQ(tokens[0].attributes[0].value, "x&y!");
}

TEST(PullParserTest, TextEntitiesExpanded) {
  auto tokens = tokenize("<e>&lt;tag&gt; &amp; more</e>");
  EXPECT_EQ(tokens[1].text, "<tag> & more");
}

TEST(PullParserTest, CDataPassedThrough) {
  auto tokens = tokenize("<e><![CDATA[<raw>&stuff]]></e>");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kCData);
  EXPECT_EQ(tokens[1].text, "<raw>&stuff");
}

TEST(PullParserTest, CommentsAndPis) {
  auto tokens = tokenize("<!-- header --><e><?pi data?></e>");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kComment);
  EXPECT_EQ(tokens[0].text, " header ");
  EXPECT_EQ(tokens[2].type, TokenType::kProcessingInstruction);
  EXPECT_EQ(tokens[2].name, "pi");
  EXPECT_EQ(tokens[2].text, "data");
}

TEST(PullParserTest, DeclarationRecognized) {
  auto tokens = tokenize("<?xml version=\"1.0\"?><e/>");
  EXPECT_EQ(tokens[0].type, TokenType::kDeclaration);
  EXPECT_EQ(tokens[0].name, "xml");
}

TEST(PullParserTest, WhitespaceAroundRootIgnored) {
  auto tokens = tokenize("\n  <e/>\n  ");
  EXPECT_EQ(tokens.size(), 2u);
}

TEST(PullParserTest, NamespacePrefixedNames) {
  auto tokens = tokenize("<SOAP-ENV:Envelope><spi:Call/></SOAP-ENV:Envelope>");
  EXPECT_EQ(tokens[0].name, "SOAP-ENV:Envelope");
  EXPECT_EQ(tokens[1].name, "spi:Call");
}

// --- error cases -------------------------------------------------------------

TEST(PullParserErrorTest, MismatchedEndTag) {
  Error error = parse_error("<a><b></a></b>");
  EXPECT_EQ(error.code(), ErrorCode::kParseError);
  EXPECT_NE(error.message().find("mismatched"), std::string::npos);
}

TEST(PullParserErrorTest, UnclosedElement) {
  Error error = parse_error("<a><b>");
  EXPECT_NE(error.message().find("unclosed"), std::string::npos);
}

TEST(PullParserErrorTest, TextOutsideRoot) {
  EXPECT_EQ(parse_error("stray<e/>").code(), ErrorCode::kParseError);
  EXPECT_EQ(parse_error("<e/>stray").code(), ErrorCode::kParseError);
}

TEST(PullParserErrorTest, MultipleRoots) {
  EXPECT_NE(parse_error("<a/><b/>").message().find("multiple root"),
            std::string::npos);
}

TEST(PullParserErrorTest, EmptyDocument) {
  EXPECT_NE(parse_error("   ").message().find("no root"), std::string::npos);
}

TEST(PullParserErrorTest, DuplicateAttribute) {
  EXPECT_NE(parse_error(R"(<e a="1" a="2"/>)").message().find("duplicate"),
            std::string::npos);
}

TEST(PullParserErrorTest, UnquotedAttribute) {
  EXPECT_EQ(parse_error("<e a=1/>").code(), ErrorCode::kParseError);
}

TEST(PullParserErrorTest, LtInAttributeValue) {
  EXPECT_EQ(parse_error(R"(<e a="x<y"/>)").code(), ErrorCode::kParseError);
}

TEST(PullParserErrorTest, BadEntity) {
  EXPECT_EQ(parse_error("<e>&nope;</e>").code(), ErrorCode::kParseError);
}

TEST(PullParserErrorTest, DoctypeRejected) {
  EXPECT_NE(parse_error("<!DOCTYPE foo><e/>").message().find("DTD"),
            std::string::npos);
}

TEST(PullParserErrorTest, TruncatedConstructs) {
  EXPECT_EQ(parse_error("<").code(), ErrorCode::kParseError);
  EXPECT_EQ(parse_error("<e").code(), ErrorCode::kParseError);
  EXPECT_EQ(parse_error("<e a=\"unterminated/>").code(),
            ErrorCode::kParseError);
  EXPECT_EQ(parse_error("<!-- unterminated").code(), ErrorCode::kParseError);
  EXPECT_EQ(parse_error("<e><![CDATA[unterminated</e>").code(),
            ErrorCode::kParseError);
  EXPECT_EQ(parse_error("<?pi unterminated").code(), ErrorCode::kParseError);
}

TEST(PullParserErrorTest, InvalidNameStart) {
  EXPECT_EQ(parse_error("<1bad/>").code(), ErrorCode::kParseError);
}

TEST(PullParserErrorTest, DeclarationNotFirst) {
  EXPECT_EQ(parse_error("<e/><?xml version=\"1.0\"?>").code(),
            ErrorCode::kParseError);
}

// --- SAX ---------------------------------------------------------------------

class RecordingHandler : public SaxHandler {
 public:
  void on_start_element(std::string_view name,
                        std::span<const Attribute> attributes) override {
    log += "<" + std::string(name);
    for (const auto& [k, v] : attributes) {
      log += " " + std::string(k) + "=" + std::string(v);
    }
    log += ">";
  }
  void on_end_element(std::string_view name) override {
    log += "</" + std::string(name) + ">";
  }
  void on_text(std::string_view text) override {
    log += "[" + std::string(text) + "]";
  }
  std::string log;
};

TEST(SaxTest, DeliversEventsInDocumentOrder) {
  RecordingHandler handler;
  ASSERT_TRUE(parse_sax("<a x=\"1\"><b>hi</b><c/></a>", handler).ok());
  EXPECT_EQ(handler.log, "<a x=1><b>[hi]</b><c></c></a>");
}

TEST(SaxTest, CDataDeliveredAsText) {
  RecordingHandler handler;
  ASSERT_TRUE(parse_sax("<a><![CDATA[<x>]]></a>", handler).ok());
  EXPECT_EQ(handler.log, "<a>[<x>]</a>");
}

TEST(SaxTest, ReportsErrors) {
  RecordingHandler handler;
  EXPECT_FALSE(parse_sax("<a><b></a>", handler).ok());
}

}  // namespace
}  // namespace spi::xml
