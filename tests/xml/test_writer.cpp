#include <gtest/gtest.h>

#include "xml/writer.hpp"

namespace spi::xml {
namespace {

TEST(WriterTest, SimpleElement) {
  Writer writer;
  writer.start_element("root").text("body").end_element();
  EXPECT_EQ(writer.take(), "<root>body</root>");
}

TEST(WriterTest, EmptyElementCollapses) {
  Writer writer;
  writer.start_element("empty").end_element();
  EXPECT_EQ(writer.take(), "<empty/>");
}

TEST(WriterTest, AttributesAreEscaped) {
  Writer writer;
  writer.start_element("e").attribute("a", "x\"<>&y").end_element();
  EXPECT_EQ(writer.take(), "<e a=\"x&quot;&lt;&gt;&amp;y\"/>");
}

TEST(WriterTest, TextIsEscaped) {
  Writer writer;
  writer.start_element("e").text("a<b>&c").end_element();
  EXPECT_EQ(writer.take(), "<e>a&lt;b&gt;&amp;c</e>");
}

TEST(WriterTest, RawSplicesVerbatim) {
  Writer writer;
  writer.start_element("outer").raw("<pre>done</pre>").end_element();
  EXPECT_EQ(writer.take(), "<outer><pre>done</pre></outer>");
}

TEST(WriterTest, NestedElements) {
  Writer writer;
  writer.start_element("a");
  writer.start_element("b").text("x").end_element();
  writer.start_element("c").end_element();
  writer.end_element();
  EXPECT_EQ(writer.take(), "<a><b>x</b><c/></a>");
}

TEST(WriterTest, DeclarationComesFirst) {
  Writer writer;
  writer.declaration();
  writer.start_element("r").end_element();
  EXPECT_EQ(writer.take(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
}

TEST(WriterTest, DeclarationAfterContentThrows) {
  Writer writer;
  writer.start_element("r");
  EXPECT_THROW(writer.declaration(), SpiError);
}

TEST(WriterTest, InvalidNamesThrow) {
  Writer writer;
  EXPECT_THROW(writer.start_element("1bad"), SpiError);
  EXPECT_THROW(writer.start_element(""), SpiError);
  writer.start_element("ok");
  EXPECT_THROW(writer.attribute("bad name", "v"), SpiError);
}

TEST(WriterTest, AttributeOutsideStartTagThrows) {
  Writer writer;
  EXPECT_THROW(writer.attribute("a", "v"), SpiError);
  writer.start_element("e").text("t");
  EXPECT_THROW(writer.attribute("a", "v"), SpiError);  // tag already closed
}

TEST(WriterTest, TextOutsideElementThrows) {
  Writer writer;
  EXPECT_THROW(writer.text("orphan"), SpiError);
  writer.start_element("e").end_element();
  EXPECT_THROW(writer.text("trailing"), SpiError);
}

TEST(WriterTest, EndWithoutStartThrows) {
  Writer writer;
  EXPECT_THROW(writer.end_element(), SpiError);
}

TEST(WriterTest, TextElementShorthand) {
  Writer writer;
  writer.start_element("r");
  writer.text_element("k", "v");
  writer.text_element("empty", "");
  writer.end_element();
  EXPECT_EQ(writer.take(), "<r><k>v</k><empty/></r>");
}

TEST(WriterTest, TakeFinishesOpenElements) {
  Writer writer;
  writer.start_element("a").start_element("b").text("x");
  EXPECT_EQ(writer.take(), "<a><b>x</b></a>");
}

TEST(WriterTest, CompleteAndDepthTrackNesting) {
  Writer writer;
  EXPECT_TRUE(writer.complete());
  writer.start_element("a");
  EXPECT_EQ(writer.depth(), 1u);
  EXPECT_FALSE(writer.complete());
  writer.start_element("b");
  EXPECT_EQ(writer.depth(), 2u);
  writer.finish();
  EXPECT_TRUE(writer.complete());
}

TEST(WriterTest, CDataRoundTripsThroughParser) {
  Writer writer;
  writer.start_element("e").cdata("<raw>&stuff").end_element();
  std::string xml = writer.take();
  EXPECT_EQ(xml, "<e><![CDATA[<raw>&stuff]]></e>");
}

TEST(WriterTest, CDataSplitsEmbeddedTerminator) {
  Writer writer;
  writer.start_element("e").cdata("a]]>b").end_element();
  std::string xml = writer.take();
  // Terminator split across two sections; no literal "]]>" inside a
  // section's content.
  EXPECT_EQ(xml, "<e><![CDATA[a]]]]><![CDATA[>b]]></e>");
}

TEST(WriterTest, CDataOutsideElementThrows) {
  Writer writer;
  EXPECT_THROW(writer.cdata("x"), SpiError);
}

TEST(WriterTest, PrettyPrintingIndents) {
  Writer writer(/*pretty=*/true);
  writer.start_element("a");
  writer.start_element("b").text("x").end_element();
  writer.end_element();
  EXPECT_EQ(writer.take(), "<a>\n  <b>x</b>\n</a>");
}

}  // namespace
}  // namespace spi::xml
