#include <gtest/gtest.h>

#include "soap/envelope.hpp"
#include "xml/namespaces.hpp"

namespace spi::xml {
namespace {

TEST(NamespaceScopeTest, RootScopeBindsOnlyXml) {
  NamespaceScope scope;
  EXPECT_TRUE(scope.uri_for("xml").has_value());
  EXPECT_FALSE(scope.uri_for("").has_value());
  EXPECT_FALSE(scope.uri_for("soap").has_value());
}

TEST(NamespaceScopeTest, EnterPicksUpDeclarations) {
  auto doc = parse_document(
      R"(<root xmlns="urn:default" xmlns:a="urn:a"><child xmlns:b="urn:b"/></root>)");
  ASSERT_TRUE(doc.ok());
  NamespaceScope root = NamespaceScope().enter(doc.value().root);
  EXPECT_EQ(root.uri_for(""), "urn:default");
  EXPECT_EQ(root.uri_for("a"), "urn:a");
  EXPECT_FALSE(root.uri_for("b").has_value());

  NamespaceScope child = root.enter(doc.value().root.children[0]);
  EXPECT_EQ(child.uri_for("b"), "urn:b");
  EXPECT_EQ(child.uri_for("a"), "urn:a");  // inherited
}

TEST(NamespaceScopeTest, InnerDeclarationShadowsOuter) {
  auto doc = parse_document(
      R"(<r xmlns:p="urn:outer"><c xmlns:p="urn:inner"/></r>)");
  ASSERT_TRUE(doc.ok());
  NamespaceScope outer = NamespaceScope().enter(doc.value().root);
  NamespaceScope inner = outer.enter(doc.value().root.children[0]);
  EXPECT_EQ(outer.uri_for("p"), "urn:outer");
  EXPECT_EQ(inner.uri_for("p"), "urn:inner");
}

TEST(NamespaceScopeTest, ResolveQualifiedNames) {
  auto doc = parse_document(R"(<r xmlns="urn:d" xmlns:p="urn:p"/>)");
  ASSERT_TRUE(doc.ok());
  NamespaceScope scope = NamespaceScope().enter(doc.value().root);

  auto prefixed = scope.resolve("p:Element");
  ASSERT_TRUE(prefixed.ok());
  EXPECT_EQ(prefixed.value(), (QName{"urn:p", "Element"}));

  auto defaulted = scope.resolve("Bare");
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(defaulted.value(), (QName{"urn:d", "Bare"}));
}

TEST(NamespaceScopeTest, UnprefixedWithoutDefaultHasNoNamespace) {
  NamespaceScope scope;
  auto resolved = scope.resolve("plain");
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved.value(), (QName{"", "plain"}));
}

TEST(NamespaceScopeTest, ResolveFailsOnUnboundOrMalformed) {
  NamespaceScope scope;
  EXPECT_FALSE(scope.resolve("nope:Element").ok());
  EXPECT_FALSE(scope.resolve(":Element").ok());
  EXPECT_FALSE(scope.resolve("p:").ok());
  EXPECT_FALSE(scope.resolve("a:b:c").ok());
}

TEST(NamespaceScopeTest, SoapEnvelopeResolvesCanonically) {
  // Our own envelopes must resolve to the canonical SOAP 1.1 URIs.
  std::string wire = soap::build_envelope("<spi:Parallel_Method/>");
  auto doc = parse_document(wire);
  ASSERT_TRUE(doc.ok());
  NamespaceScope scope = NamespaceScope().enter(doc.value().root);

  EXPECT_TRUE(element_is(doc.value().root, scope, soap::kEnvelopeNs,
                         "Envelope"));
  const Element& body = doc.value().root.children[0];
  NamespaceScope body_scope = scope.enter(body);
  EXPECT_TRUE(element_is(body, body_scope, soap::kEnvelopeNs, "Body"));
  EXPECT_TRUE(element_is(body.children[0], body_scope.enter(body.children[0]),
                         soap::kSpiNs, "Parallel_Method"));
}

TEST(NamespaceScopeTest, ElementIsRejectsWrongNamespaceSameLocal) {
  auto doc = parse_document(
      R"(<f:Envelope xmlns:f="urn:fake-soap"><f:Body/></f:Envelope>)");
  ASSERT_TRUE(doc.ok());
  NamespaceScope scope = NamespaceScope().enter(doc.value().root);
  // Same local name "Envelope" but the wrong namespace: strict consumers
  // must not accept it.
  EXPECT_FALSE(element_is(doc.value().root, scope, soap::kEnvelopeNs,
                          "Envelope"));
}

}  // namespace
}  // namespace spi::xml
