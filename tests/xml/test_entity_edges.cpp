// Edge cases for the zero-copy entity/CDATA machinery: expansions that land
// at the very start/end of a run, runs long enough to force a fresh scratch
// arena chunk, and `]]>` smuggled across adjacent CDATA sections (the
// multi-run arena-merge path in parse_document).
#include <gtest/gtest.h>

#include <string>

#include "xml/parser.hpp"

namespace spi::xml {
namespace {

std::vector<OwnedToken> tokenize_ok(std::string_view input) {
  PullParser parser(input);
  std::vector<OwnedToken> tokens;
  while (true) {
    auto token = parser.next();
    EXPECT_TRUE(token.ok()) << token.error().to_string();
    if (!token.ok() || token.value().type == TokenType::kEndOfDocument) break;
    tokens.emplace_back(token.value());
  }
  return tokens;
}

std::string text_of(const std::vector<OwnedToken>& tokens) {
  std::string text;
  for (const OwnedToken& token : tokens) {
    if (token.type == TokenType::kText || token.type == TokenType::kCData) {
      text += token.text;
    }
  }
  return text;
}

TEST(EntityEdgeTest, NumericEntityAtRunStartAndEnd) {
  // Expansion at offset 0 and at the last byte of the text run.
  auto tokens = tokenize_ok("<e>&#65;middle&#x42;</e>");
  EXPECT_EQ(text_of(tokens), "AmiddleB");

  auto doc = parse_document("<e>&#65;middle&#x42;</e>");
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  EXPECT_EQ(doc.value().root.text, "AmiddleB");
}

TEST(EntityEdgeTest, NumericEntityIsEntireRun) {
  // A run that is nothing but one multi-byte expansion (4-byte UTF-8).
  auto tokens = tokenize_ok("<e>&#x1F600;</e>");
  EXPECT_EQ(text_of(tokens), "\xF0\x9F\x98\x80");

  auto doc = parse_document("<e>&#x1F600;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.text, "\xF0\x9F\x98\x80");
}

TEST(EntityEdgeTest, NumericEntityAtAttributeValueBoundaries) {
  auto tokens = tokenize_ok(R"(<e head="&#72;ead" tail="tai&#108;"/>)");
  ASSERT_EQ(tokens[0].attributes.size(), 2u);
  EXPECT_EQ(tokens[0].attributes[0].value, "Head");
  EXPECT_EQ(tokens[0].attributes[1].value, "tail");

  auto doc = parse_document(R"(<e head="&#72;ead" tail="tai&#108;"/>)");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.attribute("head"), "Head");
  EXPECT_EQ(doc.value().root.attribute("tail"), "tail");
}

TEST(EntityEdgeTest, ExpansionSpansScratchArenaChunkBoundary) {
  // A text run longer than the arena's first chunk (4 KiB default) forces
  // the scratch arena to grow mid-document; the expanded view must stay
  // intact because chunks are separately heap-allocated.
  std::string filler(5000, 'x');
  std::string input = "<e>" + filler + "&#33;</e>";
  auto tokens = tokenize_ok(input);
  EXPECT_EQ(text_of(tokens), filler + "!");

  auto doc = parse_document(input);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.text, filler + "!");
}

TEST(EntityEdgeTest, CDataCloserSplitAcrossAdjacentSections) {
  // The classic way to embed a literal "]]>" is to split it across two
  // CDATA sections. The pull parser reports two runs; parse_document must
  // merge them (arena concatenation path) into one logical text.
  constexpr std::string_view input =
      "<e><![CDATA[a]]]]><![CDATA[>b]]></e>";
  auto tokens = tokenize_ok(input);
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kCData);
  EXPECT_EQ(tokens[1].text, "a]]");
  EXPECT_EQ(tokens[2].type, TokenType::kCData);
  EXPECT_EQ(tokens[2].text, ">b");
  EXPECT_EQ(text_of(tokens), "a]]>b");

  auto doc = parse_document(input);
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  EXPECT_EQ(doc.value().root.text, "a]]>b");
}

TEST(EntityEdgeTest, AllFivePredefinedEntitiesInAttributeValue) {
  constexpr std::string_view input =
      R"(<e all="&amp;&lt;&gt;&quot;&apos;"/>)";
  auto tokens = tokenize_ok(input);
  ASSERT_EQ(tokens[0].attributes.size(), 1u);
  EXPECT_EQ(tokens[0].attributes[0].value, "&<>\"'");

  auto doc = parse_document(input);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.attribute("all"), "&<>\"'");

  // Full round trip: serializing re-escapes, reparsing re-expands.
  auto reparsed = parse_document(doc.value().root.to_string());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(reparsed.value().root.attribute("all"), "&<>\"'");
}

TEST(EntityEdgeTest, PredefinedEntitiesInTextRoundTrip) {
  auto doc = parse_document("<e>&amp;&lt;&gt;&quot;&apos;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root.text, "&<>\"'");
  auto reparsed = parse_document(doc.value().root.to_string());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().root.text, "&<>\"'");
}

}  // namespace
}  // namespace spi::xml
