// ParseLimits enforcement (DESIGN.md §11): for every governed dimension,
// a document just below the bound parses and a document at/over it is
// rejected with kParseError carrying "parse limit exceeded: <limit>".
// Includes the classic hostile shapes: 10k-deep nesting, 10k-attribute
// elements, and billion-laughs-style cumulative entity expansion (this
// parser has no DTDs, so the attack surface is many small expansions, not
// recursive ones — the cumulative budget closes it).
#include <gtest/gtest.h>

#include <string>

#include "soap/envelope.hpp"
#include "xml/parser.hpp"

namespace spi::xml {
namespace {

Status drain(std::string_view input, const ParseLimits& limits) {
  PullParser parser(input, nullptr, limits);
  while (true) {
    auto token = parser.next();
    if (!token.ok()) return token.error();
    if (token.value().type == TokenType::kEndOfDocument) return Status();
  }
}

void expect_limit_rejection(std::string_view input, const ParseLimits& limits,
                            std::string_view limit_name) {
  Status status = drain(input, limits);
  ASSERT_FALSE(status.ok()) << "expected '" << limit_name << "' rejection";
  EXPECT_EQ(status.error().code(), ErrorCode::kParseError);
  EXPECT_NE(status.error().message().find(
                "parse limit exceeded: " + std::string(limit_name)),
            std::string::npos)
      << status.error().message();
}

std::string nested(size_t depth) {
  std::string out;
  out.reserve(depth * 7 + 16);
  for (size_t i = 0; i < depth; ++i) out += "<a>";
  out += "x";
  for (size_t i = 0; i < depth; ++i) out += "</a>";
  return out;
}

TEST(ParseLimitsTest, DepthJustBelowBoundParses) {
  ParseLimits limits;
  limits.max_depth = 32;
  EXPECT_TRUE(drain(nested(32), limits).ok());
}

TEST(ParseLimitsTest, DepthAtBoundRejected) {
  ParseLimits limits;
  limits.max_depth = 32;
  expect_limit_rejection(nested(33), limits, "depth");
}

TEST(ParseLimitsTest, TenThousandDeepNestingRejectedByDefaults) {
  // The regression the limit exists for: default limits must refuse a
  // 10k-deep document long before it exhausts the stack elsewhere.
  expect_limit_rejection(nested(10'000), ParseLimits{}, "depth");
}

TEST(ParseLimitsTest, DomParserHonorsDepthLimit) {
  ParseLimits limits;
  limits.max_depth = 8;
  auto document = parse_document(nested(9), limits);
  ASSERT_FALSE(document.ok());
  EXPECT_EQ(document.error().code(), ErrorCode::kParseError);
}

std::string many_attributes(size_t n) {
  std::string out = "<e";
  for (size_t i = 0; i < n; ++i) {
    out += " a" + std::to_string(i) + "=\"v\"";
  }
  out += "/>";
  return out;
}

TEST(ParseLimitsTest, AttributesJustBelowBoundParse) {
  ParseLimits limits;
  limits.max_attributes = 16;
  EXPECT_TRUE(drain(many_attributes(16), limits).ok());
}

TEST(ParseLimitsTest, AttributesOverBoundRejected) {
  ParseLimits limits;
  limits.max_attributes = 16;
  expect_limit_rejection(many_attributes(17), limits, "attributes");
}

TEST(ParseLimitsTest, TenThousandAttributesRejectedByDefaults) {
  expect_limit_rejection(many_attributes(10'000), ParseLimits{},
                         "attributes");
}

TEST(ParseLimitsTest, NameBytesBound) {
  ParseLimits limits;
  limits.max_name_bytes = 8;
  std::string ok = "<" + std::string(8, 'n') + "/>";
  std::string over = "<" + std::string(9, 'n') + "/>";
  EXPECT_TRUE(drain(ok, limits).ok());
  expect_limit_rejection(over, limits, "name-bytes");
}

TEST(ParseLimitsTest, AttributeValueBytesBound) {
  ParseLimits limits;
  limits.max_attribute_value_bytes = 16;
  std::string ok = "<e a=\"" + std::string(16, 'v') + "\"/>";
  std::string over = "<e a=\"" + std::string(17, 'v') + "\"/>";
  EXPECT_TRUE(drain(ok, limits).ok());
  expect_limit_rejection(over, limits, "attribute-value-bytes");
}

TEST(ParseLimitsTest, TokenBudget) {
  ParseLimits limits;
  limits.max_tokens = 64;
  std::string flat = "<r>";
  for (size_t i = 0; i < 100; ++i) flat += "<c/>";
  flat += "</r>";
  expect_limit_rejection(flat, limits, "tokens");
  // A small document fits comfortably under the same budget.
  EXPECT_TRUE(drain("<r><c/><c/></r>", limits).ok());
}

TEST(ParseLimitsTest, CumulativeEntityExpansionBudget) {
  // Billion-laughs, cumulative flavor: each text node is small, but the
  // sum of expansion work across the document is what the budget bounds.
  ParseLimits limits;
  limits.max_entity_expansion_bytes = 256;
  std::string hostile = "<r>";
  for (size_t i = 0; i < 64; ++i) {
    hostile += "<t>&amp;&lt;&gt;&quot;&apos;&amp;&lt;&gt;</t>";
  }
  hostile += "</r>";
  expect_limit_rejection(hostile, limits, "entity-expansion");

  // Just below: a handful of the same nodes passes.
  std::string mild = "<r><t>&amp;&lt;&gt;</t></r>";
  EXPECT_TRUE(drain(mild, limits).ok());
}

TEST(ParseLimitsTest, EntityFreeTextCostsNoBudget) {
  // Lazy expansion: text without '&' never touches the budget, so a tiny
  // budget still admits large plain documents.
  ParseLimits limits;
  limits.max_entity_expansion_bytes = 1;
  std::string plain = "<r>" + std::string(64 * 1024, 'x') + "</r>";
  EXPECT_TRUE(drain(plain, limits).ok());
}

TEST(ParseLimitsTest, SaxPathEnforcesLimitsToo) {
  struct NullHandler : SaxHandler {
  } handler;
  ParseLimits limits;
  limits.max_depth = 4;
  Status status = parse_sax(nested(5), handler, limits);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code(), ErrorCode::kParseError);
}

TEST(ParseLimitsTest, ZeroLimitRejectsEverything) {
  // 0 is a real bound, not "unlimited" — a config typo fails closed.
  ParseLimits limits;
  limits.max_tokens = 0;
  expect_limit_rejection("<a/>", limits, "tokens");
}

// --- envelope-shape limits (soap::EnvelopeLimits) -------------------------

std::string envelope_with(size_t header_blocks, size_t body_entries) {
  std::string out =
      "<SOAP-ENV:Envelope xmlns:SOAP-ENV="
      "\"http://schemas.xmlsoap.org/soap/envelope/\">";
  if (header_blocks > 0) {
    out += "<SOAP-ENV:Header>";
    for (size_t i = 0; i < header_blocks; ++i) out += "<h/>";
    out += "</SOAP-ENV:Header>";
  }
  out += "<SOAP-ENV:Body>";
  for (size_t i = 0; i < body_entries; ++i) out += "<op/>";
  out += "</SOAP-ENV:Body></SOAP-ENV:Envelope>";
  return out;
}

TEST(EnvelopeLimitsTest, HeaderBlocksBound) {
  soap::EnvelopeLimits limits;
  limits.max_header_blocks = 4;
  EXPECT_TRUE(soap::Envelope::parse(envelope_with(4, 1), {}, limits).ok());
  auto rejected = soap::Envelope::parse(envelope_with(5, 1), {}, limits);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_NE(rejected.error().message().find(
                "envelope limit exceeded: header-blocks"),
            std::string::npos)
      << rejected.error().message();
}

TEST(EnvelopeLimitsTest, BodyEntriesBound) {
  soap::EnvelopeLimits limits;
  limits.max_body_entries = 4;
  EXPECT_TRUE(soap::Envelope::parse(envelope_with(0, 4), {}, limits).ok());
  auto rejected = soap::Envelope::parse(envelope_with(0, 5), {}, limits);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_NE(rejected.error().message().find(
                "envelope limit exceeded: body-entries"),
            std::string::npos)
      << rejected.error().message();
}

TEST(EnvelopeLimitsTest, ParseLimitsPlumbedThroughEnvelopeParse) {
  xml::ParseLimits parse_limits;
  // Opening Body at depth 2 must trip a depth-1 bound (self-closing
  // entries never push the open stack, so a bound of 2 would pass).
  parse_limits.max_depth = 1;
  auto rejected =
      soap::Envelope::parse(envelope_with(0, 1), parse_limits, {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kParseError);
}

}  // namespace
}  // namespace spi::xml
