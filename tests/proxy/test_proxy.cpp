// End-to-end packing proxy (DESIGN.md §15): scatter/gather of packed
// envelopes across a backend fleet with call-id-correct merges, trace and
// deadline propagation across the hop, per-hop codec negotiation, max
// Retry-After relay on all-backend shed, runtime ring membership, and the
// backend-kill chaos cells CI runs under ASan (ProxyChaosTest.*).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/assembler.hpp"
#include "core/call_context.hpp"
#include "core/client.hpp"
#include "core/params.hpp"
#include "core/registry.hpp"
#include "core/remote_plan.hpp"
#include "core/server.hpp"
#include "http/client.hpp"
#include "http/message.hpp"
#include "http/server.hpp"
#include "net/sim_transport.hpp"
#include "proxy/hash_ring.hpp"
#include "proxy/proxy.hpp"
#include "services/echo.hpp"
#include "soap/envelope.hpp"
#include "telemetry/trace.hpp"

namespace spi::proxy {
namespace {

using core::CallOutcome;
using core::ServiceCall;
using soap::Value;

class ProxyTest : public ::testing::Test {
 protected:
  struct BackendHost {
    std::string name;
    net::Endpoint endpoint;
    core::ServiceRegistry registry;
    std::unique_ptr<core::SpiServer> server;
  };

  /// What the ShardService handlers observed, for the propagation tests.
  struct Observation {
    std::string backend;
    std::string trace_id;
    bool deadline_valid = false;
    Duration deadline_remaining = Duration::zero();
  };

  /// Starts `count` more SpiServers, each also exposing ShardService/Where:
  /// an idempotent operation that records its CallContext and answers with
  /// the backend's own name — so the merged response REVEALS placement.
  void start_backends(int count, core::ServerOptions options = {}) {
    for (int i = 0; i < count; ++i) {
      auto host = std::make_unique<BackendHost>();
      host->name = "backend-" + std::to_string(backends_.size() + 1);
      host->endpoint = net::Endpoint{host->name, 80};
      services::register_echo_service(host->registry);
      core::ServiceBinder binder(host->registry, "ShardService");
      const std::string name = host->name;
      binder.bind_idempotent(
          "Where", [this, name](const soap::Struct&) -> Result<Value> {
            Observation seen;
            seen.backend = name;
            if (const core::CallContext* context =
                    core::current_call_context()) {
              seen.trace_id = context->trace.trace_id;
              seen.deadline_valid = context->deadline.valid();
              seen.deadline_remaining = context->deadline.remaining(
                  RealClock::instance().now());
            }
            std::lock_guard lock(observed_mutex_);
            observed_.push_back(std::move(seen));
            return Value(name);
          });
      host->server = std::make_unique<core::SpiServer>(
          transport_, host->endpoint, host->registry, options);
      ASSERT_TRUE(host->server->start().ok());
      backends_.push_back(std::move(host));
    }
  }

  /// Options preloaded with every started backend, sharding by the "key"
  /// parameter so one packed message spreads across the fleet.
  ProxyOptions fleet_options() {
    ProxyOptions options;
    for (const auto& backend : backends_) {
      options.backends.push_back(backend->endpoint);
    }
    options.shard_param = "key";
    return options;
  }

  void start_proxy(ProxyOptions options) {
    proxy_ = std::make_unique<PackingProxy>(
        transport_, net::Endpoint{"proxy", 80}, std::move(options));
    ASSERT_TRUE(proxy_->start().ok());
  }

  std::unique_ptr<core::SpiClient> make_client(
      core::ClientOptions options = {}) {
    return std::make_unique<core::SpiClient>(transport_, proxy_->endpoint(),
                                             std::move(options));
  }

  ServiceCall where(const std::string& key) {
    return core::make_call("ShardService", "Where", {{"key", Value(key)}});
  }

  std::vector<ServiceCall> where_calls(size_t count) {
    std::vector<ServiceCall> calls;
    calls.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      calls.push_back(where("key-" + std::to_string(i)));
    }
    return calls;
  }

  std::vector<net::Endpoint> member_endpoints() const {
    std::vector<net::Endpoint> endpoints;
    for (const auto& backend : backends_) {
      endpoints.push_back(backend->endpoint);
    }
    return endpoints;
  }

  /// The backend a call must land on: same pure function of (members,
  /// vnodes, key) the proxy's own ring computes.
  net::Endpoint expected_owner(const ServiceCall& call,
                               const std::vector<net::Endpoint>& members,
                               const std::set<net::Endpoint>& avoid = {}) {
    HashRing ring(64);
    for (const net::Endpoint& member : members) ring.add(member);
    auto owner = avoid.empty()
                     ? ring.route(proxy_->route_key(call))
                     : ring.route_excluding(proxy_->route_key(call), avoid);
    EXPECT_TRUE(owner.has_value());
    return owner.value_or(net::Endpoint{});
  }

  std::string name_of(const net::Endpoint& endpoint) const {
    for (const auto& backend : backends_) {
      if (backend->endpoint == endpoint) return backend->name;
    }
    return endpoint.to_string();
  }

  /// Raw POST at the proxy, bypassing SpiClient (expired deadlines and
  /// stub-fleet responses must reach the proxy unfiltered).
  http::Response raw_post(std::string body, const http::Headers* extra =
                                                nullptr) {
    http::HttpClient http(transport_, proxy_->endpoint(), {});
    auto response = http.post("/spi", std::move(body), "text/xml", extra);
    EXPECT_TRUE(response.ok()) << response.error().to_string();
    return response.ok() ? std::move(response).value() : http::Response{};
  }

  http::Response raw_get(const std::string& target) {
    http::HttpClient http(transport_, proxy_->endpoint(), {});
    http::Request request;
    request.method = "GET";
    request.target = target;
    auto response = http.send(std::move(request));
    EXPECT_TRUE(response.ok()) << response.error().to_string();
    return response.ok() ? std::move(response).value() : http::Response{};
  }

  std::vector<Observation> observations() {
    std::lock_guard lock(observed_mutex_);
    return observed_;
  }

  net::SimTransport transport_;
  std::vector<std::unique_ptr<BackendHost>> backends_;
  std::unique_ptr<PackingProxy> proxy_;  // after backends_: destroyed first
  std::mutex observed_mutex_;
  std::vector<Observation> observed_;
};

// --- scatter/gather core ----------------------------------------------------

TEST_F(ProxyTest, PackedScatterPreservesCallIdsAcrossBackends) {
  start_backends(3);
  start_proxy(fleet_options());
  auto client = make_client();

  auto calls = where_calls(12);
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), calls.size());

  // Every outcome sits in its ORIGINAL slot and names exactly the backend
  // the ring assigns its key — the merge never crossed call ids.
  std::set<std::string> hit;
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << i << ": "
                                  << outcomes[i].error().to_string();
    EXPECT_EQ(outcomes[i].value().as_string(),
              name_of(expected_owner(calls[i], member_endpoints())))
        << "call " << i;
    hit.insert(outcomes[i].value().as_string());
  }
  EXPECT_GE(hit.size(), 2u) << "one pack must actually fan out";

  auto stats = proxy_->stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.scattered_subpacks, hit.size())
      << "one sub-pack per distinct owner";
  EXPECT_EQ(stats.reroutes, 0u);
}

TEST_F(ProxyTest, TraditionalSingleCallRoutesByOperationAffinity) {
  start_backends(3);
  ProxyOptions options = fleet_options();
  options.shard_param.clear();  // default affinity: "service/operation"
  start_proxy(std::move(options));
  auto client = make_client();

  auto first = client->call("ShardService", "Where", {});
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  auto second = client->call("ShardService", "Where", {});
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  // Affinity is sticky: the same operation always lands on the same
  // backend, and it is the one the ring names.
  EXPECT_EQ(first.value().as_string(), second.value().as_string());
  HashRing ring(64);
  for (const net::Endpoint& member : member_endpoints()) ring.add(member);
  EXPECT_EQ(first.value().as_string(),
            name_of(*ring.route("ShardService/Where")));
}

TEST_F(ProxyTest, PlanRoutesWholeToOneBackend) {
  start_backends(3);
  start_proxy(fleet_options());
  auto client = make_client();

  core::RemotePlan plan;
  plan.step("EchoService", "Echo", {core::PlanArg::value("data", Value("a"))})
      .step("EchoService", "Echo",
            {core::PlanArg::value("data", Value("b"))});
  auto outcomes = client->execute_plan(plan);
  ASSERT_TRUE(outcomes.ok()) << outcomes.error().to_string();
  ASSERT_EQ(outcomes.value().size(), 2u);
  EXPECT_EQ(outcomes.value()[0].value().as_string(), "a");
  EXPECT_EQ(outcomes.value()[1].value().as_string(), "b");

  // A dependency chain cannot split: exactly ONE backend saw traffic.
  size_t backends_hit = 0;
  for (const auto& backend : backends_) {
    if (backend->server->stats().http_requests > 0) ++backends_hit;
  }
  EXPECT_EQ(backends_hit, 1u);
}

// --- header propagation across the hop (trace + deadline) -------------------

TEST_F(ProxyTest, OriginTraceIdIsContinuedOnEverySubPack) {
  start_backends(3);
  start_proxy(fleet_options());
  auto client = make_client();

  telemetry::TraceContext origin;
  origin.trace_id = std::string(32, 'a');
  origin.parent_id = std::string(16, 'b');
  telemetry::TraceScope scope(origin);

  auto calls = where_calls(12);
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), calls.size());
  for (const CallOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }

  // Every handler on every backend executed under the ORIGIN trace id:
  // client -> proxy continued it, proxy -> backend continued it again.
  auto seen = observations();
  ASSERT_EQ(seen.size(), calls.size());
  std::set<std::string> backends_seen;
  for (const Observation& observation : seen) {
    EXPECT_EQ(observation.trace_id, origin.trace_id);
    backends_seen.insert(observation.backend);
  }
  EXPECT_GE(backends_seen.size(), 2u)
      << "the shared trace id must span multiple backends to mean anything";
}

TEST_F(ProxyTest, DeadlineBudgetShrinksAcrossTheHopButSurvivesIt) {
  start_backends(3);
  start_proxy(fleet_options());
  core::ClientOptions client_options;
  client_options.call_timeout = std::chrono::milliseconds(500);
  auto client = make_client(std::move(client_options));

  auto calls = where_calls(9);
  auto outcomes = client->call_packed(calls);
  for (const CallOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }

  // Each backend handler saw a VALID deadline whose remaining budget is
  // positive but strictly within the origin's 500ms — the proxy re-sent
  // the remaining budget, not the original, and not nothing.
  auto seen = observations();
  ASSERT_EQ(seen.size(), calls.size());
  for (const Observation& observation : seen) {
    EXPECT_TRUE(observation.deadline_valid)
        << observation.backend << " saw no deadline";
    EXPECT_GT(observation.deadline_remaining, Duration::zero());
    EXPECT_LE(observation.deadline_remaining, std::chrono::milliseconds(500));
  }
}

TEST_F(ProxyTest, ExpiredDeadlineIsShedAtTheProxyWithoutBackendTraffic) {
  start_backends(2);
  start_proxy(fleet_options());

  std::string envelope;
  {
    resilience::Deadline spent =
        resilience::Deadline::after(std::chrono::milliseconds(-5));
    resilience::DeadlineScope scope(spent);
    core::Assembler assembler(nullptr, {});
    auto calls = where_calls(4);
    envelope = assembler.assemble_request(calls, core::PackMode::kPacked);
  }
  http::Response response = raw_post(std::move(envelope));
  EXPECT_EQ(response.status, 504);
  EXPECT_NE(response.body.find("DeadlineExceeded"), std::string::npos)
      << response.body;
  EXPECT_EQ(proxy_->stats().deadline_shed, 1u);
  for (const auto& backend : backends_) {
    EXPECT_EQ(backend->server->stats().http_requests, 0u)
        << backend->name << " was dialed for a message already dead";
  }
}

// --- all-backend shed: the max Retry-After relay ----------------------------

TEST_F(ProxyTest, AllBackendsShedSurfacesTheLargestRetryAfter) {
  // A stub fleet that always sheds: 503 + Retry-After + a CapacityExceeded
  // fault body, exactly what SpiServer admission control emits.
  auto shedding = [](std::atomic<int>& hits, const std::string& hint) {
    return [&hits, hint](const http::Request&) {
      hits.fetch_add(1, std::memory_order_relaxed);
      std::string body = soap::build_envelope(
          soap::Fault::from_error(
              Error(ErrorCode::kCapacityExceeded, "admission shed"))
              .to_xml());
      http::Response response = http::Response::make(
          503, "Service Unavailable", std::move(body), "text/xml");
      response.headers.set("Retry-After", hint);
      return response;
    };
  };
  std::atomic<int> slow_hits{0};
  std::atomic<int> fast_hits{0};
  http::HttpServer slow(transport_, net::Endpoint{"shed-slow", 80},
                        shedding(slow_hits, "0.500"), {});
  http::HttpServer fast(transport_, net::Endpoint{"shed-fast", 80},
                        shedding(fast_hits, "0.200"), {});
  ASSERT_TRUE(slow.start().ok());
  ASSERT_TRUE(fast.start().ok());

  ProxyOptions options;
  options.backends = {slow.endpoint(), fast.endpoint()};
  options.shard_param = "key";
  start_proxy(std::move(options));

  core::Assembler assembler(nullptr, {});
  auto calls = where_calls(16);  // enough keys to hit both stubs
  http::Response response =
      raw_post(assembler.assemble_request(calls, core::PackMode::kPacked));

  ASSERT_GE(slow_hits.load(), 1) << "test premise: both stubs saw traffic";
  ASSERT_GE(fast_hits.load(), 1) << "test premise: both stubs saw traffic";
  EXPECT_EQ(response.status, 503);
  auto hint = response.headers.get("Retry-After");
  ASSERT_TRUE(hint.has_value());
  // The MAXIMUM across the fleet, not the first or smallest: the fleet has
  // headroom again only when its slowest member does.
  EXPECT_EQ(*hint, "0.500");
  EXPECT_EQ(proxy_->stats().all_backend_sheds, 1u);
}

TEST_F(ProxyTest, EmptyFleetShedsWithConfiguredHint) {
  ProxyOptions options;
  options.shard_param = "key";
  start_proxy(std::move(options));

  core::Assembler assembler(nullptr, {});
  auto calls = where_calls(2);
  http::Response response =
      raw_post(assembler.assemble_request(calls, core::PackMode::kPacked));
  EXPECT_EQ(response.status, 503);
  auto hint = response.headers.get("Retry-After");
  ASSERT_TRUE(hint.has_value());
  EXPECT_EQ(*hint, "0.050");  // ProxyOptions.retry_after_hint default

  http::Response health = raw_get("/healthz");
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("no-backends"), std::string::npos);
}

// --- per-hop codec negotiation ----------------------------------------------

TEST_F(ProxyTest, CodecsNegotiateIndependentlyPerHop) {
  start_backends(2);
  ProxyOptions options = fleet_options();
  options.backend_request_codec = "deflate";  // proxy->backend hop
  options.backend_accept_codecs = {"deflate"};
  start_proxy(std::move(options));

  core::ClientOptions client_options;  // client->proxy hop: bxml back
  client_options.accept_codecs = {"bxml"};
  auto client = make_client(std::move(client_options));

  auto calls = where_calls(8);
  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), calls.size());
  for (const CallOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }

  // The client hop negotiated bxml at the proxy...
  const std::string proxy_metrics = proxy_->metrics().expose();
  EXPECT_NE(
      proxy_metrics.find("spi_codec_negotiations_total{codec=\"bxml\"} 1"),
      std::string::npos)
      << proxy_metrics;
  // ...while the backend hop spoke deflate in BOTH directions, invisible
  // to the origin client.
  std::string backend_metrics;
  for (const auto& backend : backends_) {
    backend_metrics += backend->server->metrics().expose();
  }
  EXPECT_NE(
      backend_metrics.find("spi_codec_decoded_bytes_total{codec=\"deflate\"}"),
      std::string::npos);
  EXPECT_NE(
      backend_metrics.find("spi_codec_negotiations_total{codec=\"deflate\"}"),
      std::string::npos);
}

// --- runtime ring membership ------------------------------------------------

TEST_F(ProxyTest, FleetMembershipChangesMoveOnlyTheChangedMembersKeys) {
  start_backends(2);
  start_proxy(fleet_options());
  start_backends(1);  // backend-3 runs but is NOT in the ring yet
  auto client = make_client();
  auto calls = where_calls(24);

  auto before = client->call_packed(calls);
  for (const CallOutcome& outcome : before) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }
  EXPECT_EQ(backends_[2]->server->stats().http_requests, 0u);

  proxy_->add_backend(backends_[2]->endpoint);
  EXPECT_EQ(proxy_->backends().size(), 3u);
  auto joined = client->call_packed(calls);
  std::vector<net::Endpoint> three = member_endpoints();
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(joined[i].ok()) << joined[i].error().to_string();
    EXPECT_EQ(joined[i].value().as_string(),
              name_of(expected_owner(calls[i], three)));
    // Consistent hashing: a key either stayed put or moved TO the joiner.
    if (joined[i].value().as_string() != before[i].value().as_string()) {
      EXPECT_EQ(joined[i].value().as_string(), backends_[2]->name);
    }
  }
  EXPECT_GE(backends_[2]->server->stats().http_requests, 1u);

  proxy_->remove_backend(backends_[2]->endpoint);
  EXPECT_EQ(proxy_->backends().size(), 2u);
  const std::uint64_t settled = backends_[2]->server->stats().http_requests;
  auto after = client->call_packed(calls);
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(after[i].ok()) << after[i].error().to_string();
    // Back to the original two-member placement, bit for bit.
    EXPECT_EQ(after[i].value().as_string(), before[i].value().as_string());
  }
  EXPECT_EQ(backends_[2]->server->stats().http_requests, settled)
      << "a removed backend must see no new traffic";
}

// --- observability ----------------------------------------------------------

TEST_F(ProxyTest, HealthzAndMetricsSurfaceProxyState) {
  start_backends(2);
  start_proxy(fleet_options());
  auto client = make_client();
  auto outcomes = client->call_packed(where_calls(6));
  for (const CallOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }

  http::Response health = raw_get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"backends\":2"), std::string::npos);

  http::Response metrics = raw_get("/metrics");
  EXPECT_EQ(metrics.status, 200);
  for (const char* name :
       {"spi_proxy_requests_total", "spi_proxy_scattered_subpacks_total",
        "spi_proxy_fanout_width", "spi_proxy_backend_subpacks_total",
        "spi_breaker_state"}) {
    EXPECT_NE(metrics.body.find(name), std::string::npos) << name;
  }
}

// --- backend-kill chaos (the CI ASan leg runs ctest -R ProxyChaos) ----------

using ProxyChaosTest = ProxyTest;

TEST_F(ProxyChaosTest, BackendKillFaultsOnlyItsCallsWhenRerouteOff) {
  start_backends(3);
  ProxyOptions options = fleet_options();
  options.reroute_on_failure = false;
  start_proxy(std::move(options));
  auto client = make_client();

  auto calls = where_calls(18);
  const net::Endpoint victim = expected_owner(calls[0], member_endpoints());
  size_t victim_slots = 0;
  for (const ServiceCall& call : calls) {
    if (expected_owner(call, member_endpoints()) == victim) ++victim_slots;
  }
  ASSERT_GE(victim_slots, 1u);
  ASSERT_LT(victim_slots, calls.size()) << "survivors must own some keys";
  for (auto& backend : backends_) {
    if (backend->endpoint == victim) backend->server->stop();
  }

  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), calls.size());
  // Partial failure is PER-CALL: exactly the dead backend's slots fault,
  // every sibling's answer arrives in its original slot.
  for (size_t i = 0; i < calls.size(); ++i) {
    const net::Endpoint owner = expected_owner(calls[i], member_endpoints());
    if (owner == victim) {
      EXPECT_FALSE(outcomes[i].ok()) << "slot " << i << " owner is dead";
    } else {
      ASSERT_TRUE(outcomes[i].ok()) << i << ": "
                                    << outcomes[i].error().to_string();
      EXPECT_EQ(outcomes[i].value().as_string(), name_of(owner));
    }
  }
  EXPECT_EQ(proxy_->stats().reroutes, 0u);
}

TEST_F(ProxyChaosTest, BackendKillReroutesOnlyItsCallsOntoSurvivors) {
  start_backends(3);
  start_proxy(fleet_options());  // reroute_on_failure defaults on
  auto client = make_client();

  auto calls = where_calls(18);
  const net::Endpoint victim = expected_owner(calls[0], member_endpoints());
  size_t victim_slots = 0;
  for (const ServiceCall& call : calls) {
    if (expected_owner(call, member_endpoints()) == victim) ++victim_slots;
  }
  for (auto& backend : backends_) {
    if (backend->endpoint == victim) backend->server->stop();
  }

  auto outcomes = client->call_packed(calls);
  ASSERT_EQ(outcomes.size(), calls.size());
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << i << ": "
                                  << outcomes[i].error().to_string();
    const net::Endpoint owner = expected_owner(calls[i], member_endpoints());
    if (owner == victim) {
      // Rerouted to the NEXT clockwise survivor for that key — never the
      // dead member, and deterministically the one route_excluding names.
      EXPECT_EQ(outcomes[i].value().as_string(),
                name_of(expected_owner(calls[i], member_endpoints(),
                                       {victim})));
    } else {
      EXPECT_EQ(outcomes[i].value().as_string(), name_of(owner))
          << "a surviving backend's call must not move";
    }
  }
  auto stats = proxy_->stats();
  EXPECT_GE(stats.reroutes, 1u);
  EXPECT_EQ(stats.rerouted_calls, victim_slots);
}

TEST_F(ProxyChaosTest, BackendKilledMidStreamKeepsGoodputAtOne) {
  start_backends(3);
  ProxyOptions options = fleet_options();
  // Executed-then-severed sub-calls may land on a survivor: the chaos
  // workload is idempotent (Where is bind_idempotent on every backend).
  options.backend_retry.idempotent = [](std::string_view,
                                        std::string_view) { return true; };
  start_proxy(std::move(options));
  auto client = make_client();

  const net::Endpoint victim =
      expected_owner(where("key-0"), member_endpoints());
  constexpr size_t kMessages = 30;
  constexpr size_t kCallsPerMessage = 9;
  size_t ok = 0;
  for (size_t i = 0; i < kMessages; ++i) {
    if (i == kMessages / 3) {
      // The kill lands mid-stream: a third of the workload ran against the
      // full fleet, the rest must survive on two members.
      for (auto& backend : backends_) {
        if (backend->endpoint == victim) backend->server->stop();
      }
    }
    auto outcomes = client->call_packed(where_calls(kCallsPerMessage));
    for (const CallOutcome& outcome : outcomes) {
      if (outcome.ok()) {
        ++ok;
      } else {
        ADD_FAILURE() << "message " << i << ": "
                      << outcome.error().to_string();
      }
    }
  }
  EXPECT_EQ(ok, kMessages * kCallsPerMessage)
      << "reroute must hold goodput at 1.0 through the kill";
  EXPECT_GE(proxy_->stats().reroutes, 1u);
  EXPECT_GE(proxy_->stats().rerouted_calls, 1u);
}

}  // namespace
}  // namespace spi::proxy
