// Packing-proxy scatter on the reactor-driven async client (DESIGN.md
// §16): over a transport with non-blocking connect the proxy fans K
// sub-packs out through ONE shared AsyncHttpClient — zero scatter-pool
// threads, the handler blocks once per message — and K=2 sub-pack
// balancing (DESIGN.md §15) moves tail calls between exactly two groups
// when that lowers the handler-round count of the pair.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/client.hpp"
#include "core/params.hpp"
#include "core/registry.hpp"
#include "core/server.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "proxy/hash_ring.hpp"
#include "proxy/proxy.hpp"

namespace spi::proxy {
namespace {

using core::CallOutcome;
using core::ServiceCall;
using soap::Value;

/// Shared fixture shape over either transport: backends exposing
/// ShardService/Where (answers with the backend's own name, so merged
/// responses REVEAL placement), a proxy sharding by the "key" parameter.
template <typename TransportT>
class ProxyFixture : public ::testing::Test {
 protected:
  struct BackendHost {
    std::string name;
    core::ServiceRegistry registry;
    std::unique_ptr<core::SpiServer> server;
  };

  virtual net::Endpoint backend_bind_endpoint(const std::string& name) = 0;
  virtual net::Endpoint proxy_bind_endpoint() = 0;

  void start_backends(int count) {
    for (int i = 0; i < count; ++i) {
      auto host = std::make_unique<BackendHost>();
      host->name = "backend-" + std::to_string(backends_.size() + 1);
      core::ServiceBinder binder(host->registry, "ShardService");
      const std::string name = host->name;
      binder.bind_idempotent("Where", [name](const soap::Struct&) {
        return Result<Value>(Value(name));
      });
      host->server = std::make_unique<core::SpiServer>(
          transport_, backend_bind_endpoint(host->name), host->registry);
      ASSERT_TRUE(host->server->start().ok());
      backends_.push_back(std::move(host));
    }
  }

  void start_proxy(ProxyOptions options) {
    for (const auto& backend : backends_) {
      options.backends.push_back(backend->server->endpoint());
    }
    options.shard_param = "key";
    proxy_ = std::make_unique<PackingProxy>(transport_, proxy_bind_endpoint(),
                                            std::move(options));
    ASSERT_TRUE(proxy_->start().ok());
  }

  ServiceCall where(const std::string& key) {
    return core::make_call("ShardService", "Where", {{"key", Value(key)}});
  }

  /// The ring owner's NAME for a call: same pure function of (members,
  /// vnodes, key) the proxy's own ring computes.
  std::string expected_owner(const ServiceCall& call) {
    HashRing ring(64);
    std::map<net::Endpoint, std::string> names;
    for (const auto& backend : backends_) {
      ring.add(backend->server->endpoint());
      names[backend->server->endpoint()] = backend->name;
    }
    auto owner = ring.route(proxy_->route_key(call));
    EXPECT_TRUE(owner.has_value());
    return owner ? names[*owner] : std::string();
  }

  /// Keys routed to distinct owners: finds `per_owner[i]` keys owned by
  /// backend i+1, probing "key-0", "key-1", ... in order.
  std::vector<ServiceCall> calls_with_placement(
      const std::vector<int>& per_owner) {
    std::vector<int> need(per_owner);
    std::vector<ServiceCall> calls;
    for (int probe = 0; probe < 100000; ++probe) {
      ServiceCall call = where("key-" + std::to_string(probe));
      std::string owner = expected_owner(call);
      for (size_t b = 0; b < need.size(); ++b) {
        if (owner == backends_[b]->name && need[b] > 0) {
          --need[b];
          calls.push_back(std::move(call));
          break;
        }
      }
      bool done = true;
      for (int n : need) done &= (n == 0);
      if (done) return calls;
    }
    ADD_FAILURE() << "could not find keys with requested placement";
    return calls;
  }

  static std::map<std::string, int> placement_counts(
      const std::vector<CallOutcome>& outcomes) {
    std::map<std::string, int> counts;
    for (const CallOutcome& outcome : outcomes) {
      if (outcome.ok()) ++counts[outcome.value().as_string()];
    }
    return counts;
  }

  TransportT transport_;
  std::vector<std::unique_ptr<BackendHost>> backends_;
  std::unique_ptr<PackingProxy> proxy_;
};

// ---------------------------------------------------------------------------
// Async scatter path: TcpTransport supports non-blocking connect, so the
// proxy builds its reactor runtime and scatter_threads=0 is viable.

class AsyncProxyTest : public ProxyFixture<net::TcpTransport> {
 protected:
  net::Endpoint backend_bind_endpoint(const std::string&) override {
    return net::Endpoint{"127.0.0.1", 0};
  }
  net::Endpoint proxy_bind_endpoint() override {
    return net::Endpoint{"127.0.0.1", 0};
  }
};

TEST_F(AsyncProxyTest, K8ScatterWithZeroScatterThreads) {
  start_backends(8);
  ProxyOptions options;
  options.scatter_threads = 0;  // async mode needs NO scatter pool
  start_proxy(std::move(options));
  ASSERT_TRUE(proxy_->async_scatter());

  core::SpiClient client(transport_, proxy_->endpoint());
  std::vector<ServiceCall> calls;
  for (int i = 0; i < 32; ++i) calls.push_back(where("key-" + std::to_string(i)));
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 32u);
  // Every call answered by its ring owner (>2 groups: no K=2 rebalance).
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error().to_string();
    EXPECT_EQ(outcomes[i].value().as_string(), expected_owner(calls[i]))
        << "slot " << i;
  }

  auto stats = proxy_->stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_GE(stats.scattered_subpacks, 2u);
  EXPECT_LE(stats.scattered_subpacks, 8u);
}

TEST_F(AsyncProxyTest, AsyncRerouteOnDeadBackendKeepsPackWhole) {
  start_backends(4);
  start_proxy(ProxyOptions{});
  ASSERT_TRUE(proxy_->async_scatter());

  // Six calls per ring owner, then kill one backend AFTER the ring
  // formed: its sub-pack fails fast (connect refused) and reroutes onto
  // survivors inside the same message.
  auto calls = calls_with_placement({6, 6, 6, 6});
  ASSERT_EQ(calls.size(), 24u);
  backends_[0]->server->stop();

  core::SpiClient client(transport_, proxy_->endpoint());
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 24u);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok())
        << "slot " << i << ": " << outcomes[i].error().to_string();
    EXPECT_NE(outcomes[i].value().as_string(), backends_[0]->name);
  }
  EXPECT_GE(proxy_->stats().rerouted_calls, 6u);
}

TEST_F(AsyncProxyTest, AsyncRuntimeMetricsExposedFromProxyRegistry) {
  start_backends(2);
  ProxyOptions options;
  options.scatter_threads = 0;
  start_proxy(std::move(options));

  core::SpiClient client(transport_, proxy_->endpoint());
  auto outcomes = client.call_packed(std::vector<ServiceCall>{
      where("key-a"), where("key-b"), where("key-c")});
  ASSERT_EQ(outcomes.size(), 3u);

  std::string scrape = proxy_->metrics().expose();
  EXPECT_NE(scrape.find("spi_async_client_requests_total"), std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find("spi_proxy_rebalanced_calls_total"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// K=2 sub-pack balancing: SimTransport has no non-blocking connect, so
// these run on the blocking scatter path — the balancing is path-agnostic
// (it rewrites the groups BEFORE scatter).

class RebalanceProxyTest : public ProxyFixture<net::SimTransport> {
 protected:
  net::Endpoint backend_bind_endpoint(const std::string& name) override {
    return net::Endpoint{name, 80};
  }
  net::Endpoint proxy_bind_endpoint() override {
    return net::Endpoint{"proxy", 80};
  }
};

TEST_F(RebalanceProxyTest, MovesTailCallsToEqualizeHandlerRounds) {
  start_backends(2);
  ProxyOptions options;
  options.rebalance_handler_round = 8;
  start_proxy(std::move(options));
  EXPECT_FALSE(proxy_->async_scatter());

  // 15 calls on backend-1, 1 on backend-2: rounds of 8 make the pair
  // {2 rounds, 1 round}. Moving 7 tail calls gives {8, 8} = one round
  // each — the merged pack answers a full round sooner.
  auto calls = calls_with_placement({15, 1});
  ASSERT_EQ(calls.size(), 16u);

  core::SpiClient client(transport_, proxy_->endpoint());
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 16u);
  for (const CallOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok()) << outcome.error().to_string();
  }
  auto counts = placement_counts(outcomes);
  EXPECT_EQ(counts["backend-1"], 8);
  EXPECT_EQ(counts["backend-2"], 8);
  EXPECT_EQ(proxy_->stats().rebalanced_calls, 7u);
}

TEST_F(RebalanceProxyTest, LeavesBalancedPairsAlone) {
  start_backends(2);
  ProxyOptions options;
  options.rebalance_handler_round = 8;
  start_proxy(std::move(options));

  // {8, 8} is already optimal (one round each): nothing may move, strict
  // shard affinity holds.
  auto calls = calls_with_placement({8, 8});
  core::SpiClient client(transport_, proxy_->endpoint());
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 16u);
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].value().as_string(), expected_owner(calls[i]));
  }
  EXPECT_EQ(proxy_->stats().rebalanced_calls, 0u);
}

TEST_F(RebalanceProxyTest, DisabledKnobPreservesStrictAffinity) {
  start_backends(2);
  ProxyOptions options;
  options.rebalance_handler_round = 0;  // off
  start_proxy(std::move(options));

  auto calls = calls_with_placement({15, 1});
  core::SpiClient client(transport_, proxy_->endpoint());
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 16u);
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].value().as_string(), expected_owner(calls[i]));
  }
  auto counts = placement_counts(outcomes);
  EXPECT_EQ(counts["backend-1"], 15);
  EXPECT_EQ(counts["backend-2"], 1);
  EXPECT_EQ(proxy_->stats().rebalanced_calls, 0u);
}

TEST_F(RebalanceProxyTest, ThreeGroupsNeverRebalance) {
  start_backends(3);
  ProxyOptions options;
  options.rebalance_handler_round = 8;
  start_proxy(std::move(options));

  // K=2 balancing is exactly-two-groups by design: three owners keep
  // strict affinity even when lopsided.
  auto calls = calls_with_placement({12, 2, 2});
  core::SpiClient client(transport_, proxy_->endpoint());
  auto outcomes = client.call_packed(calls);
  ASSERT_EQ(outcomes.size(), 16u);
  for (size_t i = 0; i < calls.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_EQ(outcomes[i].value().as_string(), expected_owner(calls[i]));
  }
  EXPECT_EQ(proxy_->stats().rebalanced_calls, 0u);
}

}  // namespace
}  // namespace spi::proxy
