// Consistent-hash ring properties the proxy's routing rests on
// (DESIGN.md §15): balance across K backends, minimal key movement on
// membership change, and determinism across instances.
#include "proxy/hash_ring.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace spi::proxy {
namespace {

net::Endpoint backend(int i) {
  return net::Endpoint{"10.0.0." + std::to_string(i),
                       static_cast<std::uint16_t>(9000 + i)};
}

std::vector<std::string> make_keys(size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back("Service" + std::to_string(i % 7) + "/Op" +
                   std::to_string(i));
  }
  return keys;
}

TEST(HashRing, EmptyRingRoutesNowhere) {
  HashRing ring;
  EXPECT_FALSE(ring.route("anything").has_value());
  EXPECT_TRUE(ring.empty());
}

TEST(HashRing, SingleMemberOwnsEverything) {
  HashRing ring;
  ring.add(backend(1));
  for (const std::string& key : make_keys(100)) {
    auto owner = ring.route(key);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(*owner, backend(1));
  }
}

TEST(HashRing, AddRemoveIdempotent) {
  HashRing ring;
  ring.add(backend(1));
  ring.add(backend(1));
  EXPECT_EQ(ring.size(), 1u);
  ring.remove(backend(1));
  ring.remove(backend(1));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.contains(backend(1)));
}

TEST(HashRing, DeterministicAcrossInstances) {
  // Two proxies configured with the same fleet must agree on ownership —
  // routing is pure function of (members, vnodes, key), no RNG, no
  // construction-order dependence.
  HashRing a(64), b(64);
  for (int i = 1; i <= 4; ++i) a.add(backend(i));
  for (int i = 4; i >= 1; --i) b.add(backend(i));
  for (const std::string& key : make_keys(500)) {
    EXPECT_EQ(a.route(key), b.route(key)) << key;
  }
}

TEST(HashRing, BalanceBoundsAcrossFourBackends) {
  // With 128 vnodes per member, each of K=4 backends should hold a share
  // of a large keyspace within [0.5, 1.5]x fair — the bound the bench's
  // goodput claim depends on (a 10x-skewed ring would serialize on one
  // backend exactly like the round-robin baseline's packed case).
  constexpr size_t kKeys = 20000;
  HashRing ring(128);
  for (int i = 1; i <= 4; ++i) ring.add(backend(i));

  std::map<net::Endpoint, size_t> share;
  for (size_t i = 0; i < kKeys; ++i) {
    auto owner = ring.route("key-" + std::to_string(i));
    ASSERT_TRUE(owner.has_value());
    ++share[*owner];
  }
  ASSERT_EQ(share.size(), 4u) << "some backend owns no keys at all";
  const double fair = kKeys / 4.0;
  for (const auto& [endpoint, count] : share) {
    EXPECT_GT(count, fair * 0.5)
        << endpoint.to_string() << " badly underloaded: " << count;
    EXPECT_LT(count, fair * 1.5)
        << endpoint.to_string() << " badly overloaded: " << count;
  }
}

TEST(HashRing, TwoMemberRingSplitsNearFair) {
  // Regression: unfinalized FNV-1a left the high bits of similar vnode
  // names ("host:80#0" vs "host:80#1") nearly unchanged, clustering ring
  // points so a 2-member ring split 4%/96%. With the fmix64 finalizer the
  // worst member of a pair must still hold a meaningful share.
  constexpr size_t kKeys = 10000;
  HashRing ring(64);
  ring.add(backend(1));
  ring.add(backend(2));

  size_t first = 0;
  for (size_t i = 0; i < kKeys; ++i) {
    auto owner = ring.route("key-" + std::to_string(i));
    ASSERT_TRUE(owner.has_value());
    if (*owner == backend(1)) ++first;
  }
  EXPECT_GT(first, kKeys / 4) << "backend-1 starved: " << first;
  EXPECT_LT(first, kKeys * 3 / 4) << "backend-1 hoards: " << first;
}

TEST(HashRing, RemovalMovesOnlyTheRemovedBackendsKeys) {
  // The consistent-hashing contract: when a backend leaves, keys it did
  // NOT own keep their owner. (A modulo-K table would reshuffle ~all.)
  constexpr size_t kKeys = 8000;
  HashRing ring(128);
  for (int i = 1; i <= 4; ++i) ring.add(backend(i));

  std::map<std::string, net::Endpoint> before;
  for (size_t i = 0; i < kKeys; ++i) {
    std::string key = "key-" + std::to_string(i);
    before.emplace(key, *ring.route(key));
  }

  ring.remove(backend(3));
  size_t moved = 0;
  for (const auto& [key, old_owner] : before) {
    auto now = *ring.route(key);
    if (old_owner == backend(3)) {
      EXPECT_NE(now, backend(3));  // orphans must land on a survivor
    } else {
      EXPECT_EQ(now, old_owner) << key << " moved although its owner stayed";
    }
    if (now != old_owner) ++moved;
  }
  // Only the departed member's share moves: ~1/4 of the keyspace.
  EXPECT_LT(moved, kKeys / 2);
}

TEST(HashRing, JoinMovesRoughlyOneKthAndNothingElseGains) {
  constexpr size_t kKeys = 8000;
  HashRing ring(128);
  for (int i = 1; i <= 3; ++i) ring.add(backend(i));

  std::map<std::string, net::Endpoint> before;
  for (size_t i = 0; i < kKeys; ++i) {
    std::string key = "key-" + std::to_string(i);
    before.emplace(key, *ring.route(key));
  }

  ring.add(backend(4));
  size_t moved = 0;
  for (const auto& [key, old_owner] : before) {
    auto now = *ring.route(key);
    if (now != old_owner) {
      // Every movement must be TOWARD the joiner — survivors never trade
      // keys among themselves on a join.
      EXPECT_EQ(now, backend(4)) << key << " moved to a non-joining member";
      ++moved;
    }
  }
  // The joiner takes ~1/K = 1/4; allow generous slack but pin the order.
  EXPECT_GT(moved, kKeys / 16);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(HashRing, RouteExcludingWalksToSurvivor) {
  HashRing ring(64);
  for (int i = 1; i <= 3; ++i) ring.add(backend(i));

  for (const std::string& key : make_keys(200)) {
    net::Endpoint owner = *ring.route(key);
    auto alternate = ring.route_excluding(key, {owner});
    ASSERT_TRUE(alternate.has_value());
    EXPECT_NE(*alternate, owner);
    // Avoiding everyone leaves nowhere to go.
    EXPECT_FALSE(
        ring.route_excluding(key, {backend(1), backend(2), backend(3)})
            .has_value());
  }
}

TEST(HashRing, RouteExcludingEmptyAvoidMatchesRoute) {
  HashRing ring(64);
  for (int i = 1; i <= 3; ++i) ring.add(backend(i));
  for (const std::string& key : make_keys(200)) {
    EXPECT_EQ(ring.route(key), ring.route_excluding(key, {}));
  }
}

}  // namespace
}  // namespace spi::proxy
