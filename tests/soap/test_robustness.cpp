// Deterministic fuzz-style robustness: random mutations of valid SOAP
// envelopes must never crash, hang, or satisfy the parser with
// inconsistent results. Every iteration is reproducible from its seed.
#include <gtest/gtest.h>

#include "benchsupport/workload.hpp"
#include "common/random.hpp"
#include "core/wire.hpp"
#include "soap/envelope.hpp"

namespace spi::soap {
namespace {

std::string valid_packed_envelope(std::uint64_t seed) {
  auto calls = bench::make_echo_calls(4, 64, seed);
  return build_envelope(core::wire::serialize_packed_request(calls));
}

enum class MutationKind { kFlipByte, kDeleteSpan, kDuplicateSpan, kTruncate };

std::string mutate(std::string envelope, SplitMix64& rng) {
  if (envelope.empty()) return envelope;
  switch (static_cast<MutationKind>(rng.next_below(4))) {
    case MutationKind::kFlipByte: {
      size_t at = rng.next_below(envelope.size());
      envelope[at] = static_cast<char>(envelope[at] ^ (1 + rng.next_below(255)));
      break;
    }
    case MutationKind::kDeleteSpan: {
      size_t at = rng.next_below(envelope.size());
      size_t len = 1 + rng.next_below(16);
      envelope.erase(at, len);
      break;
    }
    case MutationKind::kDuplicateSpan: {
      size_t at = rng.next_below(envelope.size());
      size_t len = 1 + rng.next_below(16);
      envelope.insert(at, envelope.substr(at, len));
      break;
    }
    case MutationKind::kTruncate: {
      envelope.resize(rng.next_below(envelope.size()));
      break;
    }
  }
  return envelope;
}

class EnvelopeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeFuzzTest, MutatedEnvelopesNeverCrashTheParser) {
  SplitMix64 rng(GetParam());
  std::string pristine = valid_packed_envelope(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string mutated = mutate(pristine, rng);
    // Occasionally stack several mutations.
    for (size_t extra = rng.next_below(3); extra > 0; --extra) {
      mutated = mutate(std::move(mutated), rng);
    }
    auto envelope = Envelope::parse(mutated);
    if (!envelope.ok()) continue;  // rejected cleanly: fine
    // If it still parses as an envelope, request parsing must also either
    // succeed or fail cleanly.
    auto request = core::wire::parse_request(envelope.value());
    if (!request.ok()) continue;
    // A successful parse must be internally consistent.
    EXPECT_LE(request.value().calls.size(), 64u);
    for (const auto& call : request.value().calls) {
      EXPECT_FALSE(call.call.service.empty());
      EXPECT_FALSE(call.call.operation.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(EnvelopeFuzzTest, RandomBytesNeverCrashTheParser) {
  SplitMix64 rng(0xF422);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    size_t size = rng.next_below(512);
    garbage.reserve(size);
    for (size_t b = 0; b < size; ++b) {
      garbage.push_back(static_cast<char>(rng.next() & 0xff));
    }
    auto envelope = Envelope::parse(garbage);
    // Random bytes essentially never form a valid envelope; the contract
    // is simply "no crash, clean error".
    if (envelope.ok()) {
      (void)core::wire::parse_request(envelope.value());
    }
  }
  SUCCEED();
}

TEST(EnvelopeFuzzTest, NestedBombsAreBounded) {
  // Deep nesting and wide fan-out must parse (or fail) in sane time and
  // memory — no quadratic blowup, no stack overflow.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "<d>";
  // Unterminated on purpose: the parser must reject it promptly.
  EXPECT_FALSE(Envelope::parse(deep).ok());

  std::string wide = "<Envelope><Body><op spi:service=\"S\">";
  for (int i = 0; i < 20'000; ++i) wide += "<p/>";
  wide += "</op></Body></Envelope>";
  auto envelope = Envelope::parse(wide);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope.value().body_entries[0]->children.size(), 20'000u);
}

TEST(EnvelopeFuzzTest, EveryTruncationOfAValidEnvelopeFailsCleanly) {
  // A prefix of a valid envelope always has an unterminated element, so
  // every truncation point must produce a clean rejection — never a
  // partial parse that smuggles half a message through.
  std::string pristine = valid_packed_envelope(99);
  for (size_t len = 0; len < pristine.size(); len += 7) {
    auto envelope = Envelope::parse(pristine.substr(0, len));
    EXPECT_FALSE(envelope.ok()) << "prefix of " << len << " bytes parsed";
  }
  ASSERT_TRUE(Envelope::parse(pristine).ok());
}

TEST(EnvelopeFuzzTest, HostileShapesRejectedByDefaultLimits) {
  // DESIGN.md §11: the default ParseLimits are live on the 1-arg parse
  // path every server request takes.
  std::string deep;
  for (int i = 0; i < 10'000; ++i) deep += "<d>";
  auto rejected = Envelope::parse(deep);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code(), ErrorCode::kParseError);
  EXPECT_NE(rejected.error().message().find("parse limit exceeded: depth"),
            std::string::npos)
      << rejected.error().message();

  std::string wide_header =
      "<Envelope xmlns=\"http://schemas.xmlsoap.org/soap/envelope/\">"
      "<Header>";
  for (int i = 0; i < 10'000; ++i) wide_header += "<h/>";
  wide_header += "</Header><Body><op/></Body></Envelope>";
  auto capacity = Envelope::parse(wide_header);
  ASSERT_FALSE(capacity.ok());
  EXPECT_EQ(capacity.error().code(), ErrorCode::kCapacityExceeded);
  EXPECT_NE(
      capacity.error().message().find("envelope limit exceeded: header-blocks"),
      std::string::npos)
      << capacity.error().message();
}

}  // namespace
}  // namespace spi::soap
