#include <gtest/gtest.h>

#include "common/random.hpp"
#include "soap/serializer.hpp"

namespace spi::soap {
namespace {

Value round_trip(const Value& value) {
  std::string xml = value_to_xml("v", value);
  auto back = value_from_xml(xml);
  EXPECT_TRUE(back.ok()) << back.error().to_string() << " for " << xml;
  return back.ok() ? back.value() : Value();
}

TEST(SerializerTest, StringEncoding) {
  EXPECT_EQ(value_to_xml("city", Value("Beijing")),
            R"(<city xsi:type="xsd:string">Beijing</city>)");
}

TEST(SerializerTest, IntEncoding) {
  EXPECT_EQ(value_to_xml("n", Value(-42)),
            R"(<n xsi:type="xsd:int">-42</n>)");
}

TEST(SerializerTest, BoolEncoding) {
  EXPECT_EQ(value_to_xml("b", Value(true)),
            R"(<b xsi:type="xsd:boolean">true</b>)");
}

TEST(SerializerTest, NullEncoding) {
  EXPECT_EQ(value_to_xml("x", Value()), R"(<x xsi:nil="true"/>)");
}

TEST(SerializerTest, ArrayEncodingHasArrayType) {
  std::string xml = value_to_xml("a", Value(Array{Value(1), Value(2)}));
  EXPECT_NE(xml.find("SOAP-ENC:arrayType=\"xsd:anyType[2]\""),
            std::string::npos);
  EXPECT_NE(xml.find("<item xsi:type=\"xsd:int\">1</item>"),
            std::string::npos);
}

TEST(SerializerTest, ScalarRoundTrips) {
  EXPECT_EQ(round_trip(Value()), Value());
  EXPECT_EQ(round_trip(Value(true)), Value(true));
  EXPECT_EQ(round_trip(Value(false)), Value(false));
  EXPECT_EQ(round_trip(Value(0)), Value(0));
  EXPECT_EQ(round_trip(Value(-123456789)), Value(-123456789));
  EXPECT_EQ(round_trip(Value("hello")), Value("hello"));
  EXPECT_EQ(round_trip(Value("")), Value(""));
  EXPECT_EQ(round_trip(Value(3.25)), Value(3.25));
  EXPECT_EQ(round_trip(Value(1e-17)), Value(1e-17));
}

TEST(SerializerTest, SpecialCharactersRoundTrip) {
  EXPECT_EQ(round_trip(Value("a<b>&\"'c")), Value("a<b>&\"'c"));
  EXPECT_EQ(round_trip(Value("line1\nline2\ttabbed")),
            Value("line1\nline2\ttabbed"));
  EXPECT_EQ(round_trip(Value("中文 payload")), Value("中文 payload"));
}

TEST(SerializerTest, EmptyContainersRoundTrip) {
  EXPECT_EQ(round_trip(Value(Array{})), Value(Array{}));
  EXPECT_EQ(round_trip(Value(Struct{})), Value(Struct{}));
}

TEST(SerializerTest, NestedStructuresRoundTrip) {
  Value value(Struct{
      {"flights", Value(Array{
                      Value(Struct{{"id", Value("CA-101")},
                                   {"price", Value(84500)}}),
                      Value(Struct{{"id", Value("NB-9")},
                                   {"price", Value(72300)}}),
                  })},
      {"count", Value(2)},
      {"meta", Value(Struct{{"nested", Value(Array{Value(Array{Value(1)})})}})},
  });
  EXPECT_EQ(round_trip(value), value);
}

TEST(SerializerTest, DeserializeToleratesMissingXsiType) {
  // Loosely-typed producers: no xsi:type anywhere.
  auto string_value = value_from_xml("<v>plain text</v>");
  ASSERT_TRUE(string_value.ok());
  EXPECT_EQ(string_value.value(), Value("plain text"));

  auto array_value = value_from_xml("<v><item>1</item><item>2</item></v>");
  ASSERT_TRUE(array_value.ok());
  ASSERT_TRUE(array_value.value().is_array());
  EXPECT_EQ(array_value.value().as_array()[0], Value("1"));

  auto struct_value = value_from_xml("<v><a>1</a><b>2</b></v>");
  ASSERT_TRUE(struct_value.ok());
  ASSERT_TRUE(struct_value.value().is_struct());
  EXPECT_EQ(struct_value.value().field("b")->as_string(), "2");
}

TEST(SerializerTest, AcceptsWiderIntegerTypes) {
  auto v = value_from_xml(R"(<v xsi:type="xsd:long">9999999999</v>)");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().as_int(), 9999999999LL);
}

TEST(SerializerTest, BooleanAcceptsNumericForms) {
  EXPECT_EQ(value_from_xml(R"(<v xsi:type="xsd:boolean">1</v>)").value(),
            Value(true));
  EXPECT_EQ(value_from_xml(R"(<v xsi:type="xsd:boolean">0</v>)").value(),
            Value(false));
}

TEST(SerializerTest, RejectsMalformedTypedValues) {
  EXPECT_FALSE(value_from_xml(R"(<v xsi:type="xsd:int">4x</v>)").ok());
  EXPECT_FALSE(value_from_xml(R"(<v xsi:type="xsd:int"></v>)").ok());
  EXPECT_FALSE(value_from_xml(R"(<v xsi:type="xsd:boolean">maybe</v>)").ok());
  EXPECT_FALSE(value_from_xml(R"(<v xsi:type="xsd:double">1..2</v>)").ok());
}

// Property sweep: random values of every shape round-trip exactly.
Value random_value(SplitMix64& rng, int depth) {
  switch (depth > 0 ? rng.next_below(7) : rng.next_below(5)) {
    case 0: return Value();
    case 1: return Value(rng.next_below(2) == 0);
    case 2: return Value(static_cast<std::int64_t>(rng.next()));
    case 3: return Value(rng.ascii_string(rng.next_below(40)));
    case 4: {
      // Doubles from a round-trippable generator.
      return Value(static_cast<double>(static_cast<std::int64_t>(
                       rng.next_below(1'000'000))) /
                   64.0);
    }
    case 5: {
      Array items;
      size_t n = rng.next_below(4);
      for (size_t i = 0; i < n; ++i) {
        items.push_back(random_value(rng, depth - 1));
      }
      return Value(std::move(items));
    }
    default: {
      Struct fields;
      size_t n = rng.next_below(4);
      for (size_t i = 0; i < n; ++i) {
        fields.emplace_back("f" + std::to_string(i),
                            random_value(rng, depth - 1));
      }
      return Value(std::move(fields));
    }
  }
}

class SerializerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializerPropertyTest, RandomValuesRoundTrip) {
  SplitMix64 rng(0x5EA1 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 25; ++i) {
    Value value = random_value(rng, 4);
    EXPECT_EQ(round_trip(value), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace spi::soap
