#include <gtest/gtest.h>

#include "soap/value.hpp"

namespace spi::soap {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.type(), Value::Type::kNull);
  EXPECT_EQ(value.type_name(), "null");
}

TEST(ValueTest, ScalarConstructionAndAccess) {
  EXPECT_TRUE(Value(true).as_bool());
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_EQ(Value(std::int64_t{1} << 40).as_int(), std::int64_t{1} << 40);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("text").as_string(), "text");
  EXPECT_EQ(Value(std::string("owned")).as_string(), "owned");
  EXPECT_EQ(Value(std::string_view("view")).as_string(), "view");
}

TEST(ValueTest, TypePredicatesAreExclusive) {
  Value value(7);
  EXPECT_TRUE(value.is_int());
  EXPECT_FALSE(value.is_double());
  EXPECT_FALSE(value.is_string());
  EXPECT_FALSE(value.is_bool());
  EXPECT_FALSE(value.is_null());
}

TEST(ValueTest, MismatchedAccessThrows) {
  Value value("str");
  EXPECT_THROW(value.as_int(), SpiError);
  EXPECT_THROW(value.as_bool(), SpiError);
  EXPECT_THROW(value.as_array(), SpiError);
  EXPECT_THROW(value.as_struct(), SpiError);
}

TEST(ValueTest, ArrayHoldsMixedTypes) {
  Value value(Array{Value(1), Value("two"), Value(3.0)});
  ASSERT_TRUE(value.is_array());
  const Array& items = value.as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].as_int(), 1);
  EXPECT_EQ(items[1].as_string(), "two");
}

TEST(ValueTest, StructFieldLookup) {
  Value value(Struct{{"name", Value("Beijing")}, {"temp", Value(31)}});
  ASSERT_TRUE(value.is_struct());
  ASSERT_NE(value.field("name"), nullptr);
  EXPECT_EQ(value.field("name")->as_string(), "Beijing");
  EXPECT_EQ(value.field("missing"), nullptr);
  EXPECT_EQ(Value(1).field("x"), nullptr);  // non-struct
}

TEST(ValueTest, StructPreservesOrderAndDuplicates) {
  Value value(Struct{{"k", Value(1)}, {"k", Value(2)}});
  EXPECT_EQ(value.field("k")->as_int(), 1);  // first wins on lookup
  EXPECT_EQ(value.as_struct().size(), 2u);
}

TEST(ValueTest, DeepEquality) {
  Value a(Struct{{"list", Value(Array{Value(1), Value("x")})}});
  Value b(Struct{{"list", Value(Array{Value(1), Value("x")})}});
  Value c(Struct{{"list", Value(Array{Value(1), Value("y")})}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(Value(1) == Value(1.0));  // int and double are distinct
}

TEST(ValueTest, PayloadBytesCountsStrings) {
  EXPECT_EQ(Value("12345").payload_bytes(), 5u);
  EXPECT_EQ(Value(Array{Value("ab"), Value("cd")}).payload_bytes(), 4u);
  Value nested(Struct{{"key", Value("value")}});
  EXPECT_EQ(nested.payload_bytes(), 3u + 5u);
  EXPECT_EQ(Value().payload_bytes(), 0u);
}

TEST(ValueDebugStringTest, RendersAllShapes) {
  Value value(Struct{
      {"city", Value("Beijing")},
      {"temps", Value(Array{Value(31), Value(28)})},
      {"ok", Value(true)},
      {"ratio", Value(0.5)},
      {"nothing", Value()},
  });
  EXPECT_EQ(value.to_debug_string(),
            "{city: \"Beijing\", temps: [31, 28], ok: true, ratio: 0.5, "
            "nothing: null}");
}

TEST(ValueDebugStringTest, ElidesLongStrings) {
  Value value(std::string(100, 'x'));
  std::string debug = value.to_debug_string(8);
  EXPECT_NE(debug.find("xxxxxxxx"), std::string::npos);
  EXPECT_NE(debug.find("(100 bytes)"), std::string::npos);
  EXPECT_LT(debug.size(), 40u);
}

}  // namespace
}  // namespace spi::soap
