#include <gtest/gtest.h>

#include "soap/envelope.hpp"

namespace spi::soap {
namespace {

TEST(BuildEnvelopeTest, WrapsBodyWithNamespaces) {
  std::string envelope = build_envelope("<op><x>1</x></op>");
  EXPECT_NE(envelope.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(envelope.find("<SOAP-ENV:Envelope"), std::string::npos);
  EXPECT_NE(envelope.find("xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/"
                          "soap/envelope/\""),
            std::string::npos);
  EXPECT_NE(envelope.find("<SOAP-ENV:Body><op><x>1</x></op></SOAP-ENV:Body>"),
            std::string::npos);
  EXPECT_EQ(envelope.find("<SOAP-ENV:Header>"), std::string::npos);
}

TEST(BuildEnvelopeTest, IncludesHeaderBlocks) {
  std::string envelope =
      build_envelope("<op/>", {"<h1>one</h1>", "<h2>two</h2>"});
  size_t header = envelope.find("<SOAP-ENV:Header>");
  size_t body = envelope.find("<SOAP-ENV:Body>");
  ASSERT_NE(header, std::string::npos);
  ASSERT_NE(body, std::string::npos);
  EXPECT_LT(header, body);
  EXPECT_NE(envelope.find("<h1>one</h1><h2>two</h2>"), std::string::npos);
}

TEST(EnvelopeParseTest, RoundTripsBuildOutput) {
  std::string wire = build_envelope("<op><x>1</x></op>", {"<h/>"});
  auto envelope = Envelope::parse(wire);
  ASSERT_TRUE(envelope.ok()) << envelope.error().to_string();
  ASSERT_EQ(envelope.value().header_blocks.size(), 1u);
  EXPECT_EQ(envelope.value().header_blocks[0]->name, "h");
  ASSERT_EQ(envelope.value().body_entries.size(), 1u);
  EXPECT_EQ(envelope.value().body_entries[0]->name, "op");
  EXPECT_EQ(envelope.value().body_entries[0]->children[0].text, "1");
}

TEST(EnvelopeParseTest, AcceptsMissingHeader) {
  auto envelope = Envelope::parse(
      "<e:Envelope xmlns:e=\"ns\"><e:Body><op/></e:Body></e:Envelope>");
  ASSERT_TRUE(envelope.ok());
  EXPECT_TRUE(envelope.value().header_blocks.empty());
  EXPECT_EQ(envelope.value().body_entries.size(), 1u);
}

TEST(EnvelopeParseTest, AcceptsEmptyBody) {
  auto envelope =
      Envelope::parse("<Envelope><Body></Body></Envelope>");
  ASSERT_TRUE(envelope.ok());
  EXPECT_TRUE(envelope.value().body_entries.empty());
}

TEST(EnvelopeParseTest, RejectsNonEnvelopeRoot) {
  auto envelope = Envelope::parse("<NotAnEnvelope/>");
  ASSERT_FALSE(envelope.ok());
  EXPECT_EQ(envelope.error().code(), ErrorCode::kProtocolError);
}

TEST(EnvelopeParseTest, RejectsMissingBody) {
  auto envelope = Envelope::parse("<Envelope><Header/></Envelope>");
  ASSERT_FALSE(envelope.ok());
  EXPECT_NE(envelope.error().message().find("no Body"), std::string::npos);
}

TEST(EnvelopeParseTest, RejectsHeaderAfterBody) {
  auto envelope =
      Envelope::parse("<Envelope><Body/><Header/></Envelope>");
  ASSERT_FALSE(envelope.ok());
}

TEST(EnvelopeParseTest, RejectsDuplicateBody) {
  auto envelope = Envelope::parse("<Envelope><Body/><Body/></Envelope>");
  ASSERT_FALSE(envelope.ok());
}

TEST(EnvelopeParseTest, RejectsMalformedXml) {
  auto envelope = Envelope::parse("<Envelope><Body></Envelope>");
  ASSERT_FALSE(envelope.ok());
  EXPECT_EQ(envelope.error().code(), ErrorCode::kParseError);
}

TEST(FaultTest, SerializesAllFields) {
  Fault fault;
  fault.faultcode = "SOAP-ENV:Client";
  fault.faultstring = "bad input";
  fault.faultactor = "urn:spi";
  fault.detail = "parameter 'x' missing";
  std::string xml = fault.to_xml();
  EXPECT_NE(xml.find("<faultcode>SOAP-ENV:Client</faultcode>"),
            std::string::npos);
  EXPECT_NE(xml.find("<faultstring>bad input</faultstring>"),
            std::string::npos);
  EXPECT_NE(xml.find("<faultactor>urn:spi</faultactor>"), std::string::npos);
  EXPECT_NE(xml.find("parameter 'x' missing"), std::string::npos);
}

TEST(FaultTest, RoundTripsThroughEnvelope) {
  Fault fault;
  fault.faultstring = "it broke";
  fault.detail = "stack details";
  auto envelope = Envelope::parse(build_envelope(fault.to_xml()));
  ASSERT_TRUE(envelope.ok());
  ASSERT_EQ(envelope.value().body_entries.size(), 1u);
  auto parsed = Fault::from_element(*envelope.value().body_entries[0]);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->faultcode, "SOAP-ENV:Server");
  EXPECT_EQ(parsed->faultstring, "it broke");
  EXPECT_EQ(parsed->detail, "stack details");
}

TEST(FaultTest, FromElementRejectsNonFault) {
  xml::Element element;
  element.name = "NotAFault";
  EXPECT_FALSE(Fault::from_element(element).has_value());
}

TEST(FaultTest, ErrorMappingPreservesCode) {
  Error client_error(ErrorCode::kNotFound, "no such op");
  Fault fault = Fault::from_error(client_error);
  EXPECT_EQ(fault.faultcode, "SOAP-ENV:Client");
  EXPECT_EQ(fault.faultstring, "NotFound");
  EXPECT_EQ(fault.detail, "no such op");

  Error server_error(ErrorCode::kInternal, "oops");
  EXPECT_EQ(Fault::from_error(server_error).faultcode, "SOAP-ENV:Server");

  Error back = fault.to_error();
  EXPECT_EQ(back.code(), ErrorCode::kFault);
  EXPECT_NE(back.message().find("no such op"), std::string::npos);
}

}  // namespace
}  // namespace spi::soap
