#include <gtest/gtest.h>

#include "services/weather.hpp"
#include "soap/wsdl.hpp"

namespace spi::soap {
namespace {

ServiceDescription weather_description() {
  ServiceDescription description;
  description.name = "WeatherService";
  description.endpoint_url = "http://weather-node:80/spi";
  description.operations.push_back(OperationDescription{
      "GetWeather",
      {{"city", "string"}},
      "anyType",
      "Current conditions for a city"});
  description.operations.push_back(
      OperationDescription{"ListCities", {}, "anyType", ""});
  return description;
}

TEST(WsdlGenerateTest, ContainsAllSections) {
  std::string wsdl = generate_wsdl(weather_description());
  EXPECT_NE(wsdl.find("<wsdl:definitions"), std::string::npos);
  EXPECT_NE(wsdl.find("name=\"GetWeatherRequest\""), std::string::npos);
  EXPECT_NE(wsdl.find("name=\"GetWeatherResponse\""), std::string::npos);
  EXPECT_NE(wsdl.find("<wsdl:portType"), std::string::npos);
  EXPECT_NE(wsdl.find("WeatherServicePortType"), std::string::npos);
  EXPECT_NE(wsdl.find("<soap:binding"), std::string::npos);
  EXPECT_NE(wsdl.find("style=\"rpc\""), std::string::npos);
  EXPECT_NE(wsdl.find("location=\"http://weather-node:80/spi\""),
            std::string::npos);
  EXPECT_NE(wsdl.find("Current conditions for a city"), std::string::npos);
}

TEST(WsdlRoundTripTest, GenerateParseIsIdentity) {
  ServiceDescription original = weather_description();
  auto parsed = parse_wsdl(generate_wsdl(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value(), original);
}

TEST(WsdlRoundTripTest, ManyTypedParameters) {
  ServiceDescription description;
  description.name = "Typed";
  description.endpoint_url = "http://h:1/spi";
  description.operations.push_back(OperationDescription{
      "Mix",
      {{"s", "string"}, {"n", "int"}, {"d", "double"}, {"b", "boolean"}},
      "string",
      ""});
  auto parsed = parse_wsdl(generate_wsdl(description));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), description);
}

TEST(WsdlParseTest, RejectsNonWsdl) {
  EXPECT_FALSE(parse_wsdl("<not-wsdl/>").ok());
  EXPECT_FALSE(parse_wsdl("malformed <").ok());
}

TEST(WsdlParseTest, RejectsDanglingMessageReference) {
  constexpr std::string_view kBroken = R"(
    <wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" name="S">
      <wsdl:portType name="SPortType">
        <wsdl:operation name="Op">
          <wsdl:input message="tns:MissingMessage"/>
        </wsdl:operation>
      </wsdl:portType>
    </wsdl:definitions>)";
  auto parsed = parse_wsdl(kBroken);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message().find("MissingMessage"),
            std::string::npos);
}

TEST(WsdlParseTest, RejectsMissingPortType) {
  constexpr std::string_view kNoPortType = R"(
    <wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" name="S"/>)";
  EXPECT_FALSE(parse_wsdl(kNoPortType).ok());
}

TEST(DescribeServiceTest, IntrospectsRegistry) {
  core::ServiceRegistry registry;
  services::register_weather_service(registry);
  auto description =
      describe_service("WeatherService",
                       registry.operation_names("WeatherService"),
                       "http://node:80/spi");
  ASSERT_TRUE(description.ok());
  EXPECT_EQ(description.value().name, "WeatherService");
  ASSERT_EQ(description.value().operations.size(), 2u);
  EXPECT_EQ(description.value().operations[0].name, "GetWeather");
  EXPECT_EQ(description.value().operations[1].name, "ListCities");

  // The introspected description must produce valid, parseable WSDL.
  auto parsed = parse_wsdl(generate_wsdl(description.value()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
}

TEST(DescribeServiceTest, UnknownServiceFails) {
  core::ServiceRegistry registry;
  EXPECT_FALSE(describe_service("Ghost", registry.operation_names("Ghost"),
                                "http://x/spi").ok());
}

}  // namespace
}  // namespace spi::soap
