#include <gtest/gtest.h>

#include "soap/envelope.hpp"
#include "soap/wsse.hpp"
#include "xml/parser.hpp"

namespace spi::soap {
namespace {

constexpr std::string_view kCreated = "2006-09-25T12:00:00Z";

// Returns the whole Document: the root's views point into the Document's
// arena, so returning the Element alone would leave them dangling.
xml::Document parse_block(const std::string& fragment) {
  auto doc = xml::parse_document(fragment);
  EXPECT_TRUE(doc.ok()) << doc.error().to_string();
  return doc.ok() ? std::move(doc).value() : xml::Document{};
}

TEST(PasswordDigestTest, MatchesFormula) {
  // digest = Base64(SHA1(nonce + created + password)), computable by hand.
  std::string digest = compute_password_digest("nonce", kCreated, "pw");
  EXPECT_EQ(digest.size(), 28u);  // 20 bytes -> 28 base64 chars
  EXPECT_EQ(digest,
            compute_password_digest("nonce", kCreated, "pw"));  // stable
  EXPECT_NE(digest, compute_password_digest("nonce2", kCreated, "pw"));
  EXPECT_NE(digest, compute_password_digest("nonce", kCreated, "pw2"));
}

TEST(Iso8601Test, ParsesStrictFormat) {
  auto t = parse_iso8601("1970-01-01T00:00:00Z");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value(), 0);
  auto later = parse_iso8601("1970-01-02T00:00:01Z");
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(later.value(), 86401);
}

TEST(Iso8601Test, RejectsMalformed) {
  EXPECT_FALSE(parse_iso8601("2006-09-25 12:00:00Z").ok());
  EXPECT_FALSE(parse_iso8601("2006-09-25T12:00:00").ok());
  EXPECT_FALSE(parse_iso8601("2006-13-25T12:00:00Z").ok());
  EXPECT_FALSE(parse_iso8601("2006-09-25T25:00:00Z").ok());
  EXPECT_FALSE(parse_iso8601("garbage").ok());
}

TEST(Iso8601Test, NowHasCorrectShape) {
  std::string now = iso8601_now();
  EXPECT_TRUE(parse_iso8601(now).ok()) << now;
}

class WsseRoundTripTest : public ::testing::Test {
 protected:
  WsseCredentials credentials_{"grid-user", "s3cret"};
  WsseTokenFactory factory_{credentials_, /*nonce_seed=*/42};
  WsseVerifier verifier_{credentials_};
};

TEST_F(WsseRoundTripTest, FactoryOutputVerifies) {
  xml::Document doc = parse_block(factory_.make_header_block(kCreated));
  xml::Element& block = doc.root;
  EXPECT_EQ(block.local_name(), "Security");
  EXPECT_TRUE(verifier_.verify(block, kCreated).ok());
}

TEST_F(WsseRoundTripTest, HeaderContainsExpectedStructure) {
  xml::Document doc = parse_block(factory_.make_header_block(kCreated));
  xml::Element& block = doc.root;
  const xml::Element* token = block.first_child("UsernameToken");
  ASSERT_NE(token, nullptr);
  EXPECT_NE(token->first_child("Username"), nullptr);
  EXPECT_NE(token->first_child("Password"), nullptr);
  EXPECT_NE(token->first_child("Nonce"), nullptr);
  EXPECT_NE(token->first_child("Created"), nullptr);
  EXPECT_NE(block.first_child("Timestamp"), nullptr);
  EXPECT_EQ(token->first_child("Username")->text, "grid-user");
  // The password itself must never appear on the wire.
  EXPECT_EQ(factory_.make_header_block(kCreated).find("s3cret"),
            std::string::npos);
}

TEST_F(WsseRoundTripTest, ReplayedNonceRejected) {
  xml::Document doc = parse_block(factory_.make_header_block(kCreated));
  xml::Element& block = doc.root;
  EXPECT_TRUE(verifier_.verify(block, kCreated).ok());
  Status replay = verifier_.verify(block, kCreated);
  ASSERT_FALSE(replay.ok());
  EXPECT_NE(replay.error().message().find("replay"), std::string::npos);
}

TEST_F(WsseRoundTripTest, FreshNoncesKeepVerifying) {
  for (int i = 0; i < 10; ++i) {
    xml::Document doc = parse_block(factory_.make_header_block(kCreated));
    EXPECT_TRUE(verifier_.verify(doc.root, kCreated).ok()) << i;
  }
}

TEST_F(WsseRoundTripTest, WrongUserRejected) {
  WsseTokenFactory other(WsseCredentials{"intruder", "s3cret"}, 1);
  xml::Document doc = parse_block(other.make_header_block(kCreated));
  Status status = verifier_.verify(doc.root, kCreated);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("unknown user"), std::string::npos);
}

TEST_F(WsseRoundTripTest, WrongPasswordRejected) {
  WsseTokenFactory other(WsseCredentials{"grid-user", "guess"}, 1);
  xml::Document doc = parse_block(other.make_header_block(kCreated));
  Status status = verifier_.verify(doc.root, kCreated);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("digest"), std::string::npos);
}

TEST_F(WsseRoundTripTest, TamperedCreatedRejected) {
  xml::Document doc = parse_block(factory_.make_header_block(kCreated));
  xml::Element& block = doc.root;
  xml::Element* token = block.first_child("UsernameToken");
  token->first_child("Created")->text = "2007-01-01T00:00:00Z";
  EXPECT_FALSE(verifier_.verify(block, kCreated).ok());
}

TEST_F(WsseRoundTripTest, IncompleteTokenRejected) {
  xml::Document doc = parse_block(factory_.make_header_block(kCreated));
  xml::Element& block = doc.root;
  xml::Element* token = block.first_child("UsernameToken");
  std::erase_if(token->children, [](const xml::Element& child) {
    return child.local_name() == "Nonce";
  });
  Status status = verifier_.verify(block, kCreated);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("incomplete"), std::string::npos);
}

TEST_F(WsseRoundTripTest, NotASecurityBlockRejected) {
  xml::Element bogus;
  bogus.name = "SomethingElse";
  EXPECT_FALSE(verifier_.verify(bogus, kCreated).ok());
}

TEST(WsseFreshnessTest, ExpiredTokenRejected) {
  WsseCredentials credentials{"u", "p"};
  WsseVerifier::Options options;
  options.freshness_window = std::chrono::seconds(300);
  WsseVerifier verifier(credentials, options);
  WsseTokenFactory factory(credentials, 7);

  xml::Document fresh = parse_block(factory.make_header_block(kCreated));
  EXPECT_TRUE(verifier.verify(fresh.root, "2006-09-25T12:04:59Z").ok());

  xml::Document stale = parse_block(factory.make_header_block(kCreated));
  Status status = verifier.verify(stale.root, "2006-09-25T12:05:01Z");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("expired"), std::string::npos);
}

TEST(WsseFreshnessTest, FutureTokenRejected) {
  WsseCredentials credentials{"u", "p"};
  WsseVerifier::Options options;
  options.freshness_window = std::chrono::seconds(300);
  WsseVerifier verifier(credentials, options);
  WsseTokenFactory factory(credentials, 7);
  xml::Document doc = parse_block(factory.make_header_block(kCreated));
  EXPECT_FALSE(verifier.verify(doc.root, "2006-09-25T11:00:00Z").ok());
}

TEST(WsseNonceCacheTest, EvictionAllowsOldNonceAgain) {
  WsseCredentials credentials{"u", "p"};
  WsseVerifier::Options options;
  options.nonce_cache_size = 2;
  WsseVerifier verifier(credentials, options);
  WsseTokenFactory factory(credentials, 7);

  std::string first = factory.make_header_block(kCreated);
  EXPECT_TRUE(verifier.verify(parse_block(first).root, kCreated).ok());
  // Two more tokens evict the first nonce from the LRU cache.
  EXPECT_TRUE(
      verifier.verify(parse_block(factory.make_header_block(kCreated)).root,
                      kCreated)
          .ok());
  EXPECT_TRUE(
      verifier.verify(parse_block(factory.make_header_block(kCreated)).root,
                      kCreated)
          .ok());
  // The evicted nonce replays successfully (bounded-memory tradeoff).
  EXPECT_TRUE(verifier.verify(parse_block(first).root, kCreated).ok());
}

}  // namespace
}  // namespace spi::soap
