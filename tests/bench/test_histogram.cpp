#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "benchsupport/histogram.hpp"

namespace spi::bench {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.mean_us(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.p50_us(), 0.0);
}

TEST(HistogramTest, MeanIsExact) {
  LatencyHistogram histogram;
  histogram.record_us(100);
  histogram.record_us(300);
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_NEAR(histogram.mean_us(), 200.0, 0.5);
}

TEST(HistogramTest, QuantilesWithinBucketError) {
  LatencyHistogram histogram;
  // Uniform 1..1000 us.
  for (int us = 1; us <= 1000; ++us) {
    histogram.record_us(static_cast<double>(us));
  }
  // Buckets grow by 4%; allow 10% tolerance.
  EXPECT_NEAR(histogram.p50_us(), 500.0, 50.0);
  EXPECT_NEAR(histogram.p95_us(), 950.0, 95.0);
  EXPECT_NEAR(histogram.p99_us(), 990.0, 99.0);
}

TEST(HistogramTest, QuantileIsMonotone) {
  LatencyHistogram histogram;
  for (int i = 0; i < 1000; ++i) {
    histogram.record_us(static_cast<double>((i * 37) % 5000 + 1));
  }
  double previous = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double value = histogram.quantile_us(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
}

TEST(HistogramTest, ExtremesClampToBucketRange) {
  LatencyHistogram histogram;
  histogram.record_us(0.0001);                  // below min bucket
  histogram.record_us(1e12);                    // far above max bucket
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_LE(histogram.quantile_us(0.0), 1.1);   // clamped to first bucket
  EXPECT_GT(histogram.quantile_us(1.0), 1e6);   // clamped to top bucket
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram histogram;
  histogram.record_ms(5);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.mean_us(), 0.0);
}

TEST(HistogramTest, SummaryShape) {
  LatencyHistogram histogram;
  histogram.record_ms(2.5);
  std::string summary = histogram.summary();
  EXPECT_NE(summary.find("n=1"), std::string::npos);
  EXPECT_NE(summary.find("p95="), std::string::npos);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  LatencyHistogram histogram;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10'000; ++i) {
          histogram.record_us(100.0 + i % 100);
        }
      });
    }
  }
  EXPECT_EQ(histogram.count(), 80'000u);
}

TEST(HistogramTest, BucketMappingIsMonotoneAndInverse) {
  size_t previous = 0;
  for (double us = 1; us < 1e6; us *= 1.5) {
    size_t bucket = LatencyHistogram::bucket_for(us);
    EXPECT_GE(bucket, previous);
    previous = bucket;
    // The recorded value is <= its bucket's upper bound.
    EXPECT_LE(us, LatencyHistogram::bucket_upper_us(bucket) * 1.0001);
  }
}

}  // namespace
}  // namespace spi::bench
