// The benchmark harness itself: fixtures, strategy runners, workload
// generation, summaries, and the env plumbing — so the figures rest on
// tested machinery.
#include <gtest/gtest.h>

#include <cstdlib>

#include "benchsupport/harness.hpp"

namespace spi::bench {
namespace {

TEST(WorkloadTest, GeneratesRequestedShape) {
  auto calls = make_echo_calls(5, 64, /*seed=*/1);
  ASSERT_EQ(calls.size(), 5u);
  for (const auto& call : calls) {
    EXPECT_EQ(call.service, "EchoService");
    EXPECT_EQ(call.operation, "Echo");
    ASSERT_EQ(call.params.size(), 1u);
    EXPECT_EQ(call.params[0].second.as_string().size(), 64u);
  }
  // Payloads differ call to call (anti-caching property).
  EXPECT_NE(calls[0].params[0].second, calls[1].params[0].second);
}

TEST(WorkloadTest, DeterministicPerSeed) {
  auto a = make_echo_calls(3, 16, 42);
  auto b = make_echo_calls(3, 16, 42);
  auto c = make_echo_calls(3, 16, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(WorkloadTest, CountEchoErrorsDetectsProblems) {
  auto calls = make_echo_calls(2, 8, 1);
  std::vector<core::CallOutcome> good;
  good.emplace_back(calls[0].params[0].second);
  good.emplace_back(calls[1].params[0].second);
  EXPECT_EQ(count_echo_errors(calls, good), 0u);

  std::vector<core::CallOutcome> wrong;
  wrong.emplace_back(soap::Value("tampered"));
  wrong.emplace_back(Error(ErrorCode::kFault, "boom"));
  EXPECT_EQ(count_echo_errors(calls, wrong), 2u);

  std::vector<core::CallOutcome> short_list;
  short_list.emplace_back(calls[0].params[0].second);
  EXPECT_EQ(count_echo_errors(calls, short_list), 2u);
}

TEST(SummarizeTest, ComputesOrderStatistics) {
  auto s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.samples, 5u);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.median_ms, 3.0);
  EXPECT_GT(s.stddev_ms, 0.0);
}

TEST(SummarizeTest, HandlesEmptyAndSingle) {
  EXPECT_EQ(summarize({}).samples, 0u);
  auto s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.min_ms, 7.0);
  EXPECT_DOUBLE_EQ(s.p95_ms, 7.0);
}

TEST(StrategyLabelTest, MatchesPaperTerminology) {
  EXPECT_EQ(strategy_label(Strategy::kSerial), "No Optimization");
  EXPECT_EQ(strategy_label(Strategy::kMultithreaded), "Multiple Threads");
  EXPECT_EQ(strategy_label(Strategy::kPacked), "Our Approach");
}

TEST(EnvOverridesTest, LinkParamsReadEnvironment) {
  ::setenv("SPI_LINK_RTT_US", "1234", 1);
  ::setenv("SPI_LINK_BW_MBPS", "10", 1);
  auto params = link_params_from_env();
  EXPECT_EQ(params.rtt, std::chrono::microseconds(1234));
  EXPECT_DOUBLE_EQ(params.bandwidth_bytes_per_sec, 10e6 / 8.0);
  ::unsetenv("SPI_LINK_RTT_US");
  ::unsetenv("SPI_LINK_BW_MBPS");
  // Defaults restored.
  EXPECT_EQ(link_params_from_env().rtt,
            net::LinkParams::ethernet_100mbit().rtt);
}

TEST(EnvOverridesTest, BenchRepsAndMaxM) {
  ::setenv("SPI_BENCH_REPS", "7", 1);
  EXPECT_EQ(bench_reps(3), 7u);
  ::unsetenv("SPI_BENCH_REPS");
  EXPECT_EQ(bench_reps(3), 3u);
  ::setenv("SPI_BENCH_MAX_M", "16", 1);
  EXPECT_EQ(bench_max_m(128), 16u);
  ::unsetenv("SPI_BENCH_MAX_M");
}

TEST(EnvOverridesTest, PackCostFromEnv) {
  ::setenv("SPI_LINK_PACK_NSPB", "55", 1);
  ::setenv("SPI_LINK_PACK_USPC", "66", 1);
  auto model = pack_cost_from_env();
  EXPECT_DOUBLE_EQ(model.ns_per_byte, 55.0);
  EXPECT_DOUBLE_EQ(model.us_per_call, 66.0);
  ::unsetenv("SPI_LINK_PACK_NSPB");
  ::unsetenv("SPI_LINK_PACK_USPC");
}

TEST(FormattersTest, FixedWidthNumbers) {
  EXPECT_EQ(fmt_ms(1.23456), "1.235");
  EXPECT_EQ(fmt_ratio(9.876), "9.88x");
}

TEST(TableTest, AlignsColumns) {
  Table table({"a", "long-header"});
  table.add_row({"1", "2"});
  table.add_row({"wide-cell"});  // short rows are padded
  std::ostringstream out;
  table.print(out);
  std::string text = out.str();
  EXPECT_NE(text.find("a          long-header"), std::string::npos);
  EXPECT_NE(text.find("wide-cell"), std::string::npos);
}

TEST(EchoFixtureTest, RunsAllStrategiesOnInstantLink) {
  EchoFixture fixture;  // instant link, no calibration
  auto calls = make_echo_calls(6, 32, /*seed=*/3);
  for (Strategy strategy : {Strategy::kSerial, Strategy::kMultithreaded,
                            Strategy::kPacked}) {
    double ms = run_once_ms(fixture.client(), calls, strategy);
    EXPECT_GE(ms, 0.0);
  }
  auto summary =
      run_repeated(fixture.client(), calls, Strategy::kPacked, 3);
  EXPECT_EQ(summary.samples, 3u);
}

TEST(EchoFixtureTest, RunOnceThrowsOnBrokenWorkload) {
  EchoFixture fixture;
  // An operation the echo service does not have -> every call faults.
  std::vector<core::ServiceCall> calls = {
      core::make_call("EchoService", "NoSuchOp")};
  EXPECT_THROW(run_once_ms(fixture.client(), calls, Strategy::kPacked),
               SpiError);
}

TEST(EchoFixtureTest, SimulatedLinkOrdersStrategiesLikeFigure5) {
  // Small-scale sanity check of the Figure 5 shape on a mild link (kept
  // fast for CI): packed beats serial at M=8, 10-byte payloads.
  FixtureOptions options;
  options.link = net::LinkParams::ethernet_100mbit();
  // Scale delays down 10x to keep the test under a second.
  options.link.connect_cost = std::chrono::microseconds(300);
  options.link.per_message_overhead = std::chrono::microseconds(200);
  options.link.rtt = std::chrono::microseconds(40);
  EchoFixture fixture(options);
  auto calls = make_echo_calls(8, 10, /*seed=*/4);
  double serial = run_once_ms(fixture.client(), calls, Strategy::kSerial);
  double packed = run_once_ms(fixture.client(), calls, Strategy::kPacked);
  EXPECT_GT(serial, packed);
}

}  // namespace
}  // namespace spi::bench
