// Behavioural contract shared by SimTransport and TcpTransport, tested via
// a typed parameterized suite, plus transport-specific cases.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/endpoint.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"

namespace spi::net {
namespace {

// --- Endpoint ---------------------------------------------------------------

TEST(EndpointTest, ParsesHostPort) {
  auto endpoint = Endpoint::parse("example.org:8080");
  ASSERT_TRUE(endpoint.ok());
  EXPECT_EQ(endpoint.value().host, "example.org");
  EXPECT_EQ(endpoint.value().port, 8080);
  EXPECT_EQ(endpoint.value().to_string(), "example.org:8080");
}

TEST(EndpointTest, RejectsMalformed) {
  EXPECT_FALSE(Endpoint::parse("nohost").ok());
  EXPECT_FALSE(Endpoint::parse(":80").ok());
  EXPECT_FALSE(Endpoint::parse("h:").ok());
  EXPECT_FALSE(Endpoint::parse("h:99999").ok());
  EXPECT_FALSE(Endpoint::parse("h:abc").ok());
}

TEST(EndpointTest, Ordering) {
  EXPECT_EQ((Endpoint{"a", 1}), (Endpoint{"a", 1}));
  EXPECT_LT((Endpoint{"a", 1}), (Endpoint{"a", 2}));
  EXPECT_LT((Endpoint{"a", 9}), (Endpoint{"b", 1}));
}

// --- shared transport contract ----------------------------------------------

/// Factory abstraction so the same suite runs on both transports.
struct TransportFixture {
  virtual ~TransportFixture() = default;
  virtual Transport& transport() = 0;
  virtual Endpoint make_endpoint() = 0;
};

struct SimFixture : TransportFixture {
  SimTransport sim;
  int next_port = 1;
  Transport& transport() override { return sim; }
  Endpoint make_endpoint() override {
    return Endpoint{"host", static_cast<std::uint16_t>(next_port++)};
  }
};

struct TcpFixture : TransportFixture {
  TcpTransport tcp;
  Transport& transport() override { return tcp; }
  Endpoint make_endpoint() override { return Endpoint{"127.0.0.1", 0}; }
};

class TransportContractTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "sim") {
      fixture_ = std::make_unique<SimFixture>();
    } else {
      fixture_ = std::make_unique<TcpFixture>();
    }
  }
  Transport& transport() { return fixture_->transport(); }
  Endpoint make_endpoint() { return fixture_->make_endpoint(); }

  std::unique_ptr<TransportFixture> fixture_;
};

TEST_P(TransportContractTest, EchoRoundTrip) {
  auto listener = transport().listen(make_endpoint());
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();
  Endpoint bound = listener.value()->endpoint();

  std::jthread server([&] {
    auto connection = listener.value()->accept();
    ASSERT_TRUE(connection.ok());
    auto data = connection.value()->receive(1024);
    ASSERT_TRUE(data.ok());
    ASSERT_TRUE(connection.value()->send("echo:" + data.value()).ok());
  });

  auto client = transport().connect(bound);
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  ASSERT_TRUE(client.value()->send("ping").ok());
  std::string received;
  while (received.size() < 9) {
    auto chunk = client.value()->receive(1024);
    ASSERT_TRUE(chunk.ok()) << chunk.error().to_string();
    received += chunk.value();
  }
  EXPECT_EQ(received, "echo:ping");
}

TEST_P(TransportContractTest, LargeTransferArrivesIntact) {
  auto listener = transport().listen(make_endpoint());
  ASSERT_TRUE(listener.ok());
  const std::string payload(1'000'000, 'x');

  std::jthread server([&] {
    auto connection = listener.value()->accept();
    ASSERT_TRUE(connection.ok());
    size_t total = 0;
    while (total < payload.size()) {
      auto chunk = connection.value()->receive(64 * 1024);
      ASSERT_TRUE(chunk.ok());
      total += chunk.value().size();
    }
    EXPECT_EQ(total, payload.size());
    ASSERT_TRUE(connection.value()->send("done").ok());
  });

  auto client = transport().connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->send(payload).ok());
  auto ack = client.value()->receive(16);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value(), "done");
}

TEST_P(TransportContractTest, CloseSignalsPeer) {
  auto listener = transport().listen(make_endpoint());
  ASSERT_TRUE(listener.ok());

  std::jthread server([&] {
    auto connection = listener.value()->accept();
    ASSERT_TRUE(connection.ok());
    // Drain until close.
    while (true) {
      auto chunk = connection.value()->receive(1024);
      if (!chunk.ok()) {
        EXPECT_EQ(chunk.error().code(), ErrorCode::kConnectionClosed);
        break;
      }
    }
  });

  auto client = transport().connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->send("bye").ok());
  client.value()->close();
}

TEST_P(TransportContractTest, ConnectToUnboundEndpointFails) {
  // For TCP, port 1 on loopback is assumed unbound (no root).
  Endpoint nowhere = GetParam() == "sim" ? Endpoint{"ghost", 404}
                                         : Endpoint{"127.0.0.1", 1};
  auto connection = transport().connect(nowhere);
  ASSERT_FALSE(connection.ok());
  EXPECT_EQ(connection.error().code(), ErrorCode::kConnectionFailed);
}

TEST_P(TransportContractTest, ListenerCloseUnblocksAccept) {
  auto listener = transport().listen(make_endpoint());
  ASSERT_TRUE(listener.ok());
  std::jthread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    listener.value()->close();
  });
  auto connection = listener.value()->accept();
  ASSERT_FALSE(connection.ok());
  EXPECT_EQ(connection.error().code(), ErrorCode::kShutdown);
}

TEST_P(TransportContractTest, StatsCountTraffic) {
  transport().reset_stats();
  auto listener = transport().listen(make_endpoint());
  ASSERT_TRUE(listener.ok());
  std::jthread server([&] {
    auto connection = listener.value()->accept();
    ASSERT_TRUE(connection.ok());
    (void)connection.value()->receive(1024);
  });
  auto client = transport().connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value()->send("12345").ok());
  server.join();
  auto stats = transport().stats();
  EXPECT_EQ(stats.connections_opened, 1u);
  EXPECT_GE(stats.bytes_sent, 5u);
  EXPECT_GE(stats.bytes_received, 5u);
}

TEST_P(TransportContractTest, ReceiveZeroIsInvalid) {
  auto listener = transport().listen(make_endpoint());
  ASSERT_TRUE(listener.ok());
  std::jthread server([&] { (void)listener.value()->accept(); });
  auto client = transport().connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  auto bad = client.value()->receive(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportContractTest,
                         ::testing::Values("sim", "tcp"),
                         [](const auto& info) { return info.param; });

// --- sim-specific -------------------------------------------------------------

TEST(SimTransportTest, DoubleBindFails) {
  SimTransport transport;
  auto first = transport.listen(Endpoint{"h", 1});
  ASSERT_TRUE(first.ok());
  auto second = transport.listen(Endpoint{"h", 1});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kAlreadyExists);
}

TEST(SimTransportTest, EndpointReusableAfterListenerClose) {
  SimTransport transport;
  {
    auto listener = transport.listen(Endpoint{"h", 2});
    ASSERT_TRUE(listener.ok());
    listener.value()->close();
  }
  EXPECT_TRUE(transport.listen(Endpoint{"h", 2}).ok());
}

TEST(SimTransportTest, LinkDelaysApplyToTransfers) {
  LinkParams params = LinkParams::instant();
  params.rtt = std::chrono::milliseconds(10);
  SimTransport transport(params);
  auto listener = transport.listen(Endpoint{"h", 3});
  ASSERT_TRUE(listener.ok());

  std::jthread server([&] {
    auto connection = listener.value()->accept();
    ASSERT_TRUE(connection.ok());
    auto data = connection.value()->receive(64);
    ASSERT_TRUE(data.ok());
    ASSERT_TRUE(connection.value()->send(data.value()).ok());
  });

  auto client = transport.connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  Stopwatch stopwatch;
  ASSERT_TRUE(client.value()->send("x").ok());
  auto reply = client.value()->receive(64);
  ASSERT_TRUE(reply.ok());
  // One full round trip: >= 2 * rtt/2 = 10 ms of modeled propagation.
  EXPECT_GE(stopwatch.elapsed_ms(), 9.0);
}

TEST(SimTransportTest, SendOnClosedConnectionFails) {
  SimTransport transport;
  auto listener = transport.listen(Endpoint{"h", 4});
  ASSERT_TRUE(listener.ok());
  auto client = transport.connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  client.value()->close();
  auto sent = client.value()->send("late");
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.error().code(), ErrorCode::kConnectionClosed);
}

// --- tcp-specific --------------------------------------------------------------

TEST(TcpTransportTest, EphemeralPortResolved) {
  TcpTransport transport;
  auto listener = transport.listen(Endpoint{"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());
  EXPECT_NE(listener.value()->endpoint().port, 0);
}

TEST(TcpTransportTest, RejectsNonIpv4Host) {
  TcpTransport transport;
  auto listener = transport.listen(Endpoint{"not-an-ip", 0});
  ASSERT_FALSE(listener.ok());
  EXPECT_EQ(listener.error().code(), ErrorCode::kInvalidArgument);
}

TEST(TcpTransportTest, TrySendvGathersSegmentsInOrder) {
  TcpTransport transport;
  EXPECT_TRUE(transport.supports_reuse_port());
  auto listener = transport.listen(Endpoint{"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok());

  std::jthread server([&] {
    auto accepted = listener.value()->accept();
    ASSERT_TRUE(accepted.ok());
    std::string received;
    while (received.size() < 11) {
      auto chunk = accepted.value()->receive(64);
      if (!chunk.ok()) break;
      received += chunk.value();
    }
    // Segments land concatenated in order, empties skipped.
    EXPECT_EQ(received, "HEAD|body|!");
    ASSERT_TRUE(accepted.value()->send("k").ok());
  });

  auto client = transport.connect(listener.value()->endpoint());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->supports_sendv());
  const std::string head = "HEAD|";
  const std::string body = "body|";
  ConstBuffer segments[4] = {{head.data(), head.size()},
                             {nullptr, 0},  // empty segments are skipped
                             {body.data(), body.size()},
                             {"!", 1}};
  // An idle loopback socket accepts 11 bytes whole; a short return here
  // would mean the gather itself is broken.
  auto sent = client.value()->try_sendv(segments, 4);
  ASSERT_TRUE(sent.ok()) << sent.error().to_string();
  ASSERT_EQ(sent.value(), 11u);
  auto ack = client.value()->receive(1);
  ASSERT_TRUE(ack.ok());

  // The gather is counted once in the wire stats, not per segment.
  EXPECT_EQ(transport.stats().bytes_sent, 12u);  // 11 + the server's "k"
}

TEST(TcpTransportTest, ReusePortListenersShareOneEndpoint) {
  TcpTransport transport;
  ListenOptions options;
  options.reuse_port = true;
  auto first = transport.listen(Endpoint{"127.0.0.1", 0}, options);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  const Endpoint endpoint = first.value()->endpoint();

  // Second listener binds the SAME resolved port: kernel accept sharding.
  auto second = transport.listen(endpoint, options);
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_EQ(second.value()->endpoint().port, endpoint.port);

  // Connections land on exactly one of the two accept queues; with both
  // listeners drained by one thread each, every connect is served.
  std::atomic<int> accepted{0};
  auto drain = [&](Listener& listener) {
    while (true) {
      auto connection = listener.accept();
      if (!connection.ok()) return;  // kShutdown after close()
      accepted.fetch_add(1);
      ASSERT_TRUE(connection.value()->send("hi").ok());
    }
  };
  std::jthread a([&] { drain(*first.value()); });
  std::jthread b([&] { drain(*second.value()); });

  constexpr int kClients = 8;
  for (int i = 0; i < kClients; ++i) {
    auto client = transport.connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto greeting = client.value()->receive(2);
    ASSERT_TRUE(greeting.ok()) << greeting.error().to_string();
  }
  EXPECT_EQ(accepted.load(), kClients);
  first.value()->close();
  second.value()->close();
}

TEST(TcpTransportTest, PlainListenRejectsSecondBind) {
  // Without reuse_port the second bind must still fail — the sharding
  // flag is opt-in, not ambient.
  TcpTransport transport;
  auto first = transport.listen(Endpoint{"127.0.0.1", 0});
  ASSERT_TRUE(first.ok());
  auto second = transport.listen(first.value()->endpoint());
  EXPECT_FALSE(second.ok());
}

}  // namespace
}  // namespace spi::net
