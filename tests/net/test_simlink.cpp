// SimLink delay arithmetic — pure calculations, no sleeping (the link is
// tested against hand-computed expectations from the model in DESIGN.md).
#include <gtest/gtest.h>

#include "net/simlink.hpp"

namespace spi::net {
namespace {

using std::chrono::microseconds;

LinkParams test_params() {
  LinkParams params;
  params.connect_cost = microseconds(1000);
  params.rtt = microseconds(400);
  params.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1 byte == 1 us
  params.endpoint_ns_per_byte = 0.0;
  params.per_message_overhead = Duration::zero();
  params.client_cores = 1;
  params.server_cores = 2;
  return params;
}

TEST(SimLinkTest, TransmissionTimeFollowsBandwidth) {
  SimLink link(test_params());
  EXPECT_EQ(link.transmission_time(0), Duration::zero());
  EXPECT_EQ(link.transmission_time(1000), microseconds(1000));
  EXPECT_EQ(link.transmission_time(12'500), microseconds(12'500));
}

TEST(SimLinkTest, ConnectDelayIsConfigured) {
  SimLink link(test_params());
  EXPECT_EQ(link.connect_delay(), microseconds(1000));
}

TEST(SimLinkTest, SingleSendBlocksForTransmission) {
  SimLink link(test_params());
  TimePoint t0{};
  auto plan = link.plan_send(500, t0, LinkDirection::kClientToServer);
  EXPECT_EQ(plan.sender_block, microseconds(500));
  // Delivery adds half an RTT of propagation.
  EXPECT_EQ(plan.deliver_after, microseconds(500 + 200));
}

TEST(SimLinkTest, SameDirectionSendsSerializeOnTheWire) {
  SimLink link(test_params());
  TimePoint t0{};
  auto first = link.plan_send(1000, t0, LinkDirection::kClientToServer);
  auto second = link.plan_send(1000, t0, LinkDirection::kClientToServer);
  EXPECT_EQ(first.sender_block, microseconds(1000));
  // Second transfer queues behind the first: 2000us total.
  EXPECT_EQ(second.sender_block, microseconds(2000));
}

TEST(SimLinkTest, OppositeDirectionsAreFullDuplex) {
  SimLink link(test_params());
  TimePoint t0{};
  auto up = link.plan_send(1000, t0, LinkDirection::kClientToServer);
  auto down = link.plan_send(1000, t0, LinkDirection::kServerToClient);
  EXPECT_EQ(up.sender_block, microseconds(1000));
  EXPECT_EQ(down.sender_block, microseconds(1000));  // no queueing
}

TEST(SimLinkTest, WireFreesUpOverTime) {
  SimLink link(test_params());
  TimePoint t0{};
  (void)link.plan_send(1000, t0, LinkDirection::kClientToServer);
  // A send starting after the wire is idle again does not queue.
  auto later = link.plan_send(
      100, t0 + microseconds(5000), LinkDirection::kClientToServer);
  EXPECT_EQ(later.sender_block, microseconds(100));
}

TEST(SimLinkTest, EndpointCostAddsCpuTimeBeforeWire) {
  LinkParams params = test_params();
  params.endpoint_ns_per_byte = 1000.0;  // 1 us/byte of CPU
  SimLink link(params);
  TimePoint t0{};
  auto plan = link.plan_send(100, t0, LinkDirection::kClientToServer);
  // 100 us CPU (serialization) then 100 us wire.
  EXPECT_EQ(plan.sender_block, microseconds(200));
}

TEST(SimLinkTest, PerMessageOverheadChargedOnSenderCpu) {
  LinkParams params = test_params();
  params.per_message_overhead = microseconds(300);
  SimLink link(params);
  TimePoint t0{};
  auto plan = link.plan_send(100, t0, LinkDirection::kClientToServer);
  EXPECT_EQ(plan.sender_block, microseconds(400));
}

TEST(SimLinkTest, ClientCpuIsSingleCore) {
  LinkParams params = test_params();
  params.per_message_overhead = microseconds(1000);
  SimLink link(params);
  TimePoint t0{};
  // Two concurrent client sends: CPU serializes them (1 core).
  auto first = link.plan_send(0, t0, LinkDirection::kClientToServer);
  auto second = link.plan_send(0, t0, LinkDirection::kClientToServer);
  EXPECT_EQ(first.sender_block, microseconds(1000));
  EXPECT_EQ(second.sender_block, microseconds(2000));
}

TEST(SimLinkTest, ServerCpuHasTwoCores) {
  LinkParams params = test_params();
  params.per_message_overhead = microseconds(1000);
  SimLink link(params);
  TimePoint t0{};
  // Three concurrent server sends on two cores: 1ms, 1ms, 2ms.
  auto a = link.plan_send(0, t0, LinkDirection::kServerToClient);
  auto b = link.plan_send(0, t0, LinkDirection::kServerToClient);
  auto c = link.plan_send(0, t0, LinkDirection::kServerToClient);
  EXPECT_EQ(a.sender_block, microseconds(1000));
  EXPECT_EQ(b.sender_block, microseconds(1000));
  EXPECT_EQ(c.sender_block, microseconds(2000));
}

TEST(SimLinkTest, ReceiveWaitUsesReceiverCpu) {
  LinkParams params = test_params();
  params.endpoint_ns_per_byte = 1000.0;
  SimLink link(params);
  TimePoint t0{};
  // Client -> server message: the RECEIVER (server, 2 cores) pays.
  EXPECT_EQ(link.receive_wait(100, t0, LinkDirection::kClientToServer),
            microseconds(100));
  EXPECT_EQ(link.receive_wait(100, t0, LinkDirection::kClientToServer),
            microseconds(100));  // second core
  EXPECT_EQ(link.receive_wait(100, t0, LinkDirection::kClientToServer),
            microseconds(200));  // queues
}

TEST(SimLinkTest, ZeroEndpointCostMeansNoReceiveWait) {
  SimLink link(test_params());
  TimePoint t0{};
  EXPECT_EQ(link.receive_wait(1'000'000, t0, LinkDirection::kClientToServer),
            Duration::zero());
}

TEST(SimLinkTest, DeterministicAcrossInstances) {
  for (int round = 0; round < 3; ++round) {
    SimLink link(test_params());
    TimePoint t0{};
    auto plan = link.plan_send(777, t0, LinkDirection::kClientToServer);
    EXPECT_EQ(plan.sender_block, microseconds(777));
    EXPECT_EQ(plan.deliver_after, microseconds(977));
  }
}

TEST(SimLinkTest, InstantParamsAreEffectivelyFree) {
  SimLink link(LinkParams::instant());
  TimePoint t0{};
  auto plan = link.plan_send(1'000'000, t0, LinkDirection::kClientToServer);
  EXPECT_LT(plan.sender_block, microseconds(10));
  EXPECT_EQ(link.connect_delay(), Duration::zero());
}

TEST(SenderReceiverOfTest, MapDirectionsToSides) {
  EXPECT_EQ(sender_of(LinkDirection::kClientToServer), LinkSide::kClient);
  EXPECT_EQ(receiver_of(LinkDirection::kClientToServer), LinkSide::kServer);
  EXPECT_EQ(sender_of(LinkDirection::kServerToClient), LinkSide::kServer);
  EXPECT_EQ(receiver_of(LinkDirection::kServerToClient), LinkSide::kClient);
}

}  // namespace
}  // namespace spi::net
