// Poller contract tests, run against every backend the platform offers
// (epoll on Linux plus the portable poll(2) fallback) so both stay honest.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "net/poller.hpp"

namespace spi::net {
namespace {

using namespace std::chrono_literals;

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
  void put(const char* bytes) {
    EXPECT_GT(::write(write_fd, bytes, std::strlen(bytes)), 0);
  }
};

class PollerBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Poller> make() {
    if (std::string(GetParam()) == "poll") return Poller::create_poll();
    return Poller::create();
  }
};

TEST_P(PollerBackendTest, BackendNameMatchesFactory) {
  auto poller = make();
  if (std::string(GetParam()) == "poll") {
    EXPECT_EQ(poller->backend(), "poll");
  } else {
#ifdef __linux__
    EXPECT_EQ(poller->backend(), "epoll");
#endif
  }
}

TEST_P(PollerBackendTest, ReportsReadReadiness) {
  auto poller = make();
  Pipe pipe;
  ASSERT_TRUE(poller->add(pipe.read_fd, 7, Readiness::kRead).ok());

  PollEvent events[4];
  // Nothing readable yet: wait times out empty.
  auto none = poller->wait(events, 4, 10ms);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), 0u);

  pipe.put("x");
  auto ready = poller->wait(events, 4, 1s);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready.value(), 1u);
  EXPECT_EQ(events[0].token, 7u);
  EXPECT_TRUE(events[0].events & Readiness::kRead);
}

TEST_P(PollerBackendTest, ReportsWriteReadiness) {
  auto poller = make();
  Pipe pipe;
  ASSERT_TRUE(poller->add(pipe.write_fd, 9, Readiness::kWrite).ok());
  PollEvent events[4];
  auto ready = poller->wait(events, 4, 1s);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready.value(), 1u);
  EXPECT_EQ(events[0].token, 9u);
  EXPECT_TRUE(events[0].events & Readiness::kWrite);
}

TEST_P(PollerBackendTest, ModifyChangesInterestAndToken) {
  auto poller = make();
  Pipe pipe;
  ASSERT_TRUE(poller->add(pipe.read_fd, 1, Readiness::kRead).ok());
  pipe.put("x");
  // Swap to write-only interest: the readable fd must go quiet.
  ASSERT_TRUE(poller->modify(pipe.read_fd, 2, Readiness::kWrite).ok());
  PollEvent events[4];
  auto quiet = poller->wait(events, 4, 10ms);
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet.value(), 0u);
  // And back: the new token comes out.
  ASSERT_TRUE(poller->modify(pipe.read_fd, 3, Readiness::kRead).ok());
  auto ready = poller->wait(events, 4, 1s);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready.value(), 1u);
  EXPECT_EQ(events[0].token, 3u);
}

TEST_P(PollerBackendTest, RemoveStopsReporting) {
  auto poller = make();
  Pipe pipe;
  ASSERT_TRUE(poller->add(pipe.read_fd, 1, Readiness::kRead).ok());
  pipe.put("x");
  ASSERT_TRUE(poller->remove(pipe.read_fd).ok());
  PollEvent events[4];
  auto quiet = poller->wait(events, 4, 10ms);
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet.value(), 0u);
}

TEST_P(PollerBackendTest, PeerCloseSurfacesAsReadOrError) {
  auto poller = make();
  Pipe pipe;
  ASSERT_TRUE(poller->add(pipe.read_fd, 5, Readiness::kRead).ok());
  ::close(pipe.write_fd);
  pipe.write_fd = -1;
  PollEvent events[4];
  auto ready = poller->wait(events, 4, 1s);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready.value(), 1u);
  // EOF may arrive as HUP (kError) or plain readability; either lets the
  // reactor discover kConnectionClosed on the next read.
  EXPECT_TRUE(events[0].events &
              (Readiness::kRead | Readiness::kError));
}

TEST_P(PollerBackendTest, WakeInterruptsBlockedWait) {
  auto poller = make();
  std::thread waker([&] {
    std::this_thread::sleep_for(50ms);
    poller->wake();
  });
  PollEvent events[4];
  const auto start = std::chrono::steady_clock::now();
  auto woken = poller->wait(events, 4, 10s);
  const auto waited = std::chrono::steady_clock::now() - start;
  waker.join();
  ASSERT_TRUE(woken.ok());
  EXPECT_EQ(woken.value(), 0u);  // wake delivers no events
  EXPECT_LT(waited, 5s);
}

TEST_P(PollerBackendTest, WakesCoalesceAndDrain) {
  auto poller = make();
  poller->wake();
  poller->wake();
  poller->wake();
  PollEvent events[4];
  auto first = poller->wait(events, 4, 100ms);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 0u);
  // Drained: a second wait must block until its timeout, not spin.
  auto second = poller->wait(events, 4, 10ms);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 0u);
}

TEST_P(PollerBackendTest, ManyFdsOnlyReadyOnesReported) {
  auto poller = make();
  std::vector<std::unique_ptr<Pipe>> pipes;
  for (int i = 0; i < 16; ++i) {
    pipes.push_back(std::make_unique<Pipe>());
    ASSERT_TRUE(poller
                    ->add(pipes.back()->read_fd,
                          static_cast<std::uint64_t>(i), Readiness::kRead)
                    .ok());
  }
  pipes[3]->put("x");
  pipes[11]->put("x");
  PollEvent events[32];
  auto ready = poller->wait(events, 32, 1s);
  ASSERT_TRUE(ready.ok());
  ASSERT_EQ(ready.value(), 2u);
  std::uint64_t seen = events[0].token + events[1].token;
  EXPECT_EQ(seen, 14u);  // tokens 3 + 11
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PollerBackendTest,
                         ::testing::Values("default", "poll"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace spi::net
